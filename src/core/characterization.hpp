#pragma once
// Workflow characterization for the Workflow Roofline model (paper Section
// III-B): the lightweight metrics — task counts, per-node volumes along the
// critical path, per-task system volumes, measured makespan, and targets —
// from which ceilings and dots are built.

#include <string>

#include "dag/graph.hpp"
#include "trace/timeline.hpp"
#include "util/json.hpp"

namespace wfr::core {

/// Characterization of one workflow execution (or plan).
///
/// Volume conventions (matching the paper's inputs):
///   * Node-level volumes (`*_per_node`) are per node, summed over the
///     tasks on the workflow's critical path — e.g. BGW at 64 nodes has
///     flops_per_node = (1164 + 3226) PFLOP / 64.
///   * `network_bytes_per_task` is the MPI volume driven through one
///     parallel slot, summed over the tasks on the critical path; its
///     ceiling uses the task's aggregate NIC bandwidth
///     (nodes_per_task x nic_gbs).
///   * System-level volumes (`fs_bytes_per_task`, `external_bytes_per_task`)
///     are per task, so the resulting shared-system ceilings are horizontal
///     (total volume = per-task volume x tasks; the parallel-task count
///     cancels out of Eq. 1).
struct WorkflowCharacterization {
  std::string name = "workflow";

  // --- Task structure --------------------------------------------------------
  int total_tasks = 1;
  /// The paper's x-axis: number of tasks that can execute concurrently.
  int parallel_tasks = 1;
  int nodes_per_task = 1;

  // --- Node-level volumes (per node, critical-path sum) ---------------------
  double flops_per_node = 0.0;
  double dram_bytes_per_node = 0.0;
  double hbm_bytes_per_node = 0.0;
  double pcie_bytes_per_node = 0.0;

  // --- Per-task volumes -------------------------------------------------------
  double network_bytes_per_task = 0.0;
  double fs_bytes_per_task = 0.0;
  double external_bytes_per_task = 0.0;

  // --- Fixed serial overhead per task (control flow; GPTune's diagonal) ----
  double overhead_seconds_per_task = 0.0;

  // --- Measurements and targets (negative = absent) ---------------------------
  double makespan_seconds = -1.0;
  double target_makespan_seconds = -1.0;

  /// Measured throughput in tasks/second (total_tasks / makespan).
  /// Throws when no makespan was recorded.
  double throughput_tps() const;

  /// Target throughput (total_tasks / target makespan); throws when no
  /// target was set.
  double target_throughput_tps() const;

  bool has_measurement() const { return makespan_seconds >= 0.0; }
  bool has_target() const { return target_makespan_seconds >= 0.0; }

  /// Validates invariants; throws InvalidArgument on violation.
  void validate() const;

  /// JSON round-trip (the CLI's --workflow characterization files).
  util::Json to_json() const;
  static WorkflowCharacterization from_json(const util::Json& json);
};

/// Derives a characterization from a workflow graph (structure + demands)
/// without executing it:
///   * parallel_tasks from the widest level;
///   * nodes_per_task from the largest task;
///   * node volumes summed per node along the unit-weight critical path;
///   * system volumes as totals divided by total task count.
WorkflowCharacterization characterize_graph(const dag::WorkflowGraph& graph);

/// Derives a characterization from an executed trace plus its graph:
/// like characterize_graph, but the critical path uses measured durations,
/// parallel_tasks uses the observed peak concurrency, and the measured
/// makespan is filled in.
WorkflowCharacterization characterize_trace(const dag::WorkflowGraph& graph,
                                            const trace::WorkflowTrace& trace);

}  // namespace wfr::core

#pragma once
// The task view of the Workflow Roofline (paper Fig. 7c): one dot per task
// (or per task-and-scale variant) with its own node ceiling, used to spot
// which task dominates the makespan and which has node-efficiency headroom.

#include <string>
#include <vector>

#include "core/system_spec.hpp"
#include "dag/graph.hpp"
#include "trace/timeline.hpp"

namespace wfr::core {

/// One task's entry in the task view.
struct TaskViewEntry {
  std::string label;   // e.g. "Epsilon @ 64 nodes"
  std::string group;   // grouping key for renderers (color families)
  int nodes = 1;
  /// Node-ceiling time for this task (its per-node dominant-channel time).
  double ceiling_seconds = 0.0;
  /// Measured wall-clock time.
  double measured_seconds = 0.0;
  /// Level of the task in the DAG (the future-work per-level annotation).
  int level = 0;

  /// Throughput of this task alone (1 / measured time).
  double tps() const;
  /// The task's own node ceiling in tasks/s at P=1.
  double ceiling_tps() const;
  /// ceiling_seconds / measured_seconds: fraction of node peak achieved.
  double efficiency() const;
};

/// A collection of task-view entries with the queries Fig. 7c supports.
class TaskView {
 public:
  void add(TaskViewEntry entry);

  const std::vector<TaskViewEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  /// Entry lookup by label; throws NotFound when absent.
  const TaskViewEntry& entry(const std::string& label) const;

  /// The task that dominates the makespan (largest measured time, i.e. the
  /// lowest dot).  Throws when empty.
  const TaskViewEntry& dominant() const;

  /// The task farthest from its node ceiling (lowest efficiency): the best
  /// node-tuning candidate.  Throws when empty.
  const TaskViewEntry& least_efficient() const;

  /// Human-readable table.
  std::string report() const;

 private:
  std::vector<TaskViewEntry> entries_;
};

/// Builds a task view from an executed trace: ceiling times come from each
/// task's demands against `system`'s node peaks (dominant channel), and
/// measured times come from the trace.  Tasks with zero node demand get a
/// zero ceiling (their efficiency is reported as 0).
TaskView task_view_from_trace(const dag::WorkflowGraph& graph,
                              const trace::WorkflowTrace& trace,
                              const SystemSpec& system);

}  // namespace wfr::core

#pragma once
// Umbrella header for the Workflow Roofline library: include this to get
// the whole public API.  Individual module headers remain includable on
// their own for faster builds.

// Foundations.
#include "util/error.hpp"     // IWYU pragma: export
#include "util/json.hpp"      // IWYU pragma: export
#include "util/logging.hpp"   // IWYU pragma: export
#include "util/strings.hpp"   // IWYU pragma: export
#include "util/table.hpp"     // IWYU pragma: export
#include "util/units.hpp"     // IWYU pragma: export

#include "math/fit.hpp"       // IWYU pragma: export
#include "math/matrix.hpp"    // IWYU pragma: export
#include "math/rng.hpp"       // IWYU pragma: export
#include "math/stats.hpp"     // IWYU pragma: export

// Workflow structure and execution.
#include "dag/graph.hpp"      // IWYU pragma: export
#include "dag/schedule.hpp"   // IWYU pragma: export
#include "dag/task.hpp"       // IWYU pragma: export
#include "dag/wdl.hpp"        // IWYU pragma: export

#include "trace/counters.hpp"  // IWYU pragma: export
#include "trace/summary.hpp"   // IWYU pragma: export
#include "trace/timeline.hpp"  // IWYU pragma: export

// Observability: metrics, resource probes, Chrome/Perfetto export.
#include "obs/chrome_trace.hpp"  // IWYU pragma: export
#include "obs/observation.hpp"   // IWYU pragma: export
#include "obs/probe.hpp"         // IWYU pragma: export
#include "obs/registry.hpp"      // IWYU pragma: export

#include "sim/cluster.hpp"  // IWYU pragma: export
#include "sim/engine.hpp"   // IWYU pragma: export
#include "sim/machine.hpp"  // IWYU pragma: export
#include "sim/runner.hpp"   // IWYU pragma: export

// The Workflow Roofline model.
#include "core/advisor.hpp"           // IWYU pragma: export
#include "core/characterization.hpp"  // IWYU pragma: export
#include "core/model.hpp"             // IWYU pragma: export
#include "core/compare.hpp"           // IWYU pragma: export
#include "core/pipeline.hpp"          // IWYU pragma: export
#include "core/system_spec.hpp"       // IWYU pragma: export
#include "core/taskview.hpp"          // IWYU pragma: export

// Visualization.
#include "plot/ascii.hpp"          // IWYU pragma: export
#include "plot/bar_plot.hpp"       // IWYU pragma: export
#include "plot/gantt_plot.hpp"     // IWYU pragma: export
#include "plot/roofline_plot.hpp"  // IWYU pragma: export

// Extensions and substrates.
#include "analytical/bgw_model.hpp"        // IWYU pragma: export
#include "analytical/cosmoflow_model.hpp"  // IWYU pragma: export
#include "analytical/gptune_model.hpp"     // IWYU pragma: export
#include "analytical/lcls_model.hpp"       // IWYU pragma: export
#include "analytical/provenance.hpp"       // IWYU pragma: export

#include "archetypes/generators.hpp"  // IWYU pragma: export
#include "autotune/control_flow.hpp"  // IWYU pragma: export
#include "autotune/tuner.hpp"         // IWYU pragma: export
#include "roofline/drilldown.hpp"     // IWYU pragma: export
#include "roofline/node_roofline.hpp" // IWYU pragma: export

#include "workflows/bgw.hpp"        // IWYU pragma: export
#include "workflows/cosmoflow.hpp"  // IWYU pragma: export
#include "workflows/gptune_wf.hpp"  // IWYU pragma: export
#include "workflows/lcls.hpp"       // IWYU pragma: export

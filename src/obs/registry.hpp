#pragma once
// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with deterministic JSON snapshot export.
//
// The paper's Section III argues workflow observation must stay
// lightweight; this registry is the sink for such metrics.  The engine
// reports self-metrics into it (events processed, heap compactions, flows
// registered/cancelled), the runner reports workflow metrics (tasks
// started/completed/retried, queue-wait and per-phase histograms), and a
// snapshot() serializes everything for external tooling.
//
// Design notes:
//   * Instruments are owned by the registry and handed out by reference;
//     std::map storage keeps those references stable for the registry's
//     lifetime and makes snapshots deterministic (sorted by name).
//   * Instruments are plain accumulators — no locks, no clocks — so the
//     hot path pays one double add per update.
//   * Histograms use fixed, caller-chosen bucket upper bounds (plus an
//     implicit +inf overflow bucket), the Prometheus convention, so two
//     runs of the same configuration snapshot identically.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace wfr::obs {

/// Monotonically increasing sum.  increment() with a negative delta throws
/// InvalidArgument (use a Gauge for values that can move both ways).
class Counter {
 public:
  void increment(double delta = 1.0);
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Last-written value (e.g. live flow count, heap slots).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: counts of observations <= each upper bound,
/// plus an implicit +inf bucket, plus sum/count/min/max for mean and range.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing (may be empty: then only
  /// the +inf bucket exists and the histogram degenerates to sum/count).
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double x);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; size() == upper_bounds().size() + 1 (last is the
  /// overflow bucket).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Approximate quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket containing the target rank; 0 when empty.  The overflow bucket
  /// reports the largest observed value.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Prometheus metric name from a dotted wfr name: invalid bytes become
/// '_', and a leading digit (or empty name) gains a '_' prefix.  The same
/// mapping MetricsRegistry::prometheus_text applies, exposed for callers
/// that emit their own exposition blocks (e.g. per-endpoint latency
/// histograms in serve::App).
std::string sanitize_metric_name(std::string_view name);

/// Standard bucket layouts.
std::vector<double> exponential_buckets(double start, double factor,
                                        int count);
/// Default layout for durations in seconds: 1 ms .. ~1e5 s, decade steps.
std::vector<double> default_seconds_buckets();

/// Named instruments, created on first access.  A name is bound to one
/// instrument kind; re-requesting it as a different kind throws
/// InvalidArgument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns (creating if absent) the counter named `name`.
  Counter& counter(std::string_view name);
  /// Returns (creating if absent) the gauge named `name`.
  Gauge& gauge(std::string_view name);
  /// Returns (creating if absent) the histogram named `name`.  The bounds
  /// apply on creation; later calls reuse the existing instrument.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  bool empty() const { return size() == 0; }

  /// Deterministic snapshot: instruments sorted by name within kind.
  /// {"counters": {...}, "gauges": {...},
  ///  "histograms": {name: {count, sum, mean, min, max, p50, p95,
  ///                        buckets: [{"le": bound, "count": n}, ...]}}}
  util::Json snapshot() const;

  /// Prometheus text exposition format (version 0.0.4), deterministic for
  /// a given registry state: one `# TYPE` block per instrument, sorted by
  /// name within kind (counters, then gauges, then histograms).  Metric
  /// names are sanitized to [a-zA-Z0-9_:] ('.' and other invalid bytes
  /// become '_').  Histograms emit cumulative `_bucket{le="..."}` series
  /// (Prometheus convention; the registry's own buckets are per-bucket)
  /// plus `_sum` and `_count`.
  std::string prometheus_text() const;

 private:
  void check_unique(std::string_view name, const char* kind) const;

  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace wfr::obs

#pragma once
// Chrome/Perfetto Trace Event builders shared by the offline simulation
// exporter (obs/chrome_trace.hpp) and the online request tracer
// (obs/tracer.hpp).  Both produce the same on-disk dialect —
// {"displayTimeUnit": "ms", "traceEvents": [...]} with "M" metadata,
// "X" complete-duration, and "C" counter events, microsecond timestamps —
// so one set of downstream tooling (chrome://tracing, ui.perfetto.dev,
// the CI trace validators) opens either file.

#include <string>

#include "util/json.hpp"

namespace wfr::obs {

/// Metadata event ("M"): names a process ("process_name") or a thread
/// track ("thread_name").  Carries no timestamp and sorts first.
util::Json trace_metadata_event(int pid, int tid, const char* kind,
                                const std::string& name);

/// Complete-duration event ("X"): one slice on track (pid, tid) from
/// `start_seconds` lasting `duration_seconds`, with free-form args.
util::Json trace_complete_event(int pid, int tid, const std::string& name,
                                const std::string& category,
                                double start_seconds,
                                double duration_seconds,
                                util::JsonObject args);

/// Counter event ("C"): one sample of the named counter track.
util::Json trace_counter_event(int pid, const std::string& name,
                               double time_seconds, util::JsonObject values);

/// The event's "ts" in microseconds; -1 for metadata events (so they sort
/// before every timestamped event).
double trace_event_ts(const util::Json& event);

/// Stable-sorts events by timestamp, metadata first.  Stability keeps
/// emission order among equal timestamps, so an enclosing slice stays
/// ahead of its first child and nesting remains well-formed.
void sort_trace_events(util::JsonArray& events);

/// Wraps sorted events in the Trace Event file envelope.
util::Json trace_events_envelope(util::JsonArray events);

}  // namespace wfr::obs

#pragma once
// Online request-scoped tracing for the serve/sweep hot path
// (docs/OBSERVABILITY.md).
//
// The offline Chrome-trace exporter (obs/chrome_trace.hpp) covers
// simulation runs; this tracer covers the live service: every request
// handled by serve::Server becomes one trace — a root "request" span with
// nested parse / handler / evaluate / serialize / write children — and
// every SweepRunner scenario evaluation becomes a span annotated with its
// cache hit/miss outcome.  Traces are exported in the same Trace Event
// format (obs/trace_event.hpp), so the tooling built for PR 2's exporter
// (chrome://tracing, ui.perfetto.dev, the CI validators) opens
// /debug/trace dumps unchanged.
//
// Hot-path design:
//   * Spans are buffered in a thread-local pending vector while a trace
//     is open on that thread; no lock is taken per span.  When the root
//     scope closes (one request, one scenario evaluation), the whole
//     batch moves into the shared ring under a single mutex acquisition —
//     one lock per request, not per span.
//   * The ring is bounded (TracerOptions::capacity): when full, the
//     oldest spans are evicted and counted (Stats::spans_evicted), so a
//     long-lived service holds a sliding window of recent traces in O(1)
//     memory.
//   * A disabled tracer (or a null Tracer*) costs one branch per scope —
//     no clock reads, no ids, no allocation.
//
// Determinism: trace ids, span ids, and timestamps are live values; the
// tracer must never feed response bodies.  /debug/trace and --trace-out
// are explicitly OUTSIDE the /v1 byte-identity contract (docs/SERVER.md).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace wfr::obs {

/// One closed span.  Timestamps are nanoseconds on the monotonic clock
/// (Tracer::now_ns); parent_id 0 marks a root span.
struct TraceSpan {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::string name;
  std::string category;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  /// Small per-thread slot (stable for a thread's lifetime) — the Trace
  /// Event "tid" track.
  std::uint32_t thread = 0;
  /// Free-form annotations (method, path, status, cache hit/miss, ...).
  std::vector<std::pair<std::string, std::string>> args;
};

struct TracerOptions {
  /// Master switch: a disabled tracer records nothing and exports an
  /// empty trace.
  bool enabled = true;
  /// Spans retained in the ring; the oldest are evicted beyond this.
  /// Must be >= 1.
  std::size_t capacity = 16384;
};

/// A handle to a span in some trace — enough to parent further spans
/// under it from any thread.  The serve reactor carries one of these
/// through a request's loop-thread/pool-thread handoffs so the whole
/// lifecycle (parse on the event loop, handle on a pool worker, write
/// back on the loop) assembles into a single well-nested trace
/// (docs/OBSERVABILITY.md).  trace_id 0 means "no trace" (tracing
/// disabled).
struct TraceRef {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

class Tracer;

/// RAII span: begins on construction, is recorded into the owning
/// thread's pending buffer on destruction.  The first scope opened on a
/// thread starts a new trace; nested scopes become children.  Constructed
/// with a null or disabled tracer, every member is a no-op.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, std::string_view name, std::string_view category);
  /// Explicit begin timestamp (e.g. queue-wait measured from the accept
  /// thread's clock reading).
  SpanScope(Tracer* tracer, std::string_view name, std::string_view category,
            std::uint64_t begin_ns);
  /// Continues a trace started on another thread: the span is parented
  /// under `remote_parent` and nested scopes opened on this thread join
  /// the same trace.  Used by the serve reactor to nest pool-thread
  /// handler spans inside the request trace the event loop started.  With
  /// a trace already open on this thread, the remote parent is ignored
  /// and the scope nests normally; an invalid ref makes the scope inert.
  SpanScope(Tracer* tracer, std::string_view name, std::string_view category,
            TraceRef remote_parent);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attaches an annotation to the span.
  void arg(std::string_view key, std::string value);

  /// True when this scope is actually recording.
  bool active() const { return tracer_ != nullptr; }
  /// The trace this scope belongs to; 0 when inactive (the access-log
  /// correlation id).
  std::uint64_t trace_id() const { return span_.trace_id; }
  /// A handle to this span for cross-thread parenting ({0,0} when
  /// inactive).
  TraceRef ref() const { return {span_.trace_id, span_.span_id}; }

 private:
  Tracer* tracer_ = nullptr;
  TraceSpan span_;
  std::uint64_t previous_parent_ = 0;
};

/// The bounded span sink.  Thread-safe; one instance per App.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  bool enabled() const { return options_.enabled; }
  std::size_t capacity() const { return options_.capacity; }

  /// Nanoseconds on the monotonic clock (the span timestamp domain).
  static std::uint64_t now_ns();

  /// The calling thread's stable slot (the Trace Event "tid" track) — for
  /// stamping manually assembled spans with the thread they actually ran
  /// on before handing them to another thread's record_batch().
  static std::uint32_t current_thread_slot();

  /// Records one already-closed span with explicit timestamps.  Inside an
  /// open SpanScope on this thread it joins that trace as a child of the
  /// current span; otherwise it forms a single-span trace of its own and
  /// is flushed immediately.
  void record_span(std::string_view name, std::string_view category,
                   std::uint64_t begin_ns, std::uint64_t end_ns,
                   std::vector<std::pair<std::string, std::string>> args = {});

  /// Opens a trace whose spans will be assembled manually across threads
  /// (the reactor's request lifecycle): allocates a trace id plus the
  /// root span's id and counts the trace as started.  The caller builds
  /// TraceSpans itself — children via allocate_span_id() parented under
  /// the returned ref — and submits the finished set with record_batch().
  /// Returns an invalid ref when tracing is disabled.
  TraceRef begin_trace();

  /// A fresh span id for manual trace assembly (see begin_trace).
  std::uint64_t allocate_span_id() { return next_span_id(); }

  /// Moves manually assembled spans into the ring under one mutex
  /// acquisition — the per-request flush of the reactor's request traces.
  /// Spans must carry their trace/span/parent ids and timestamps; a span
  /// with thread 0 is stamped with the calling thread's slot.  No-op when
  /// disabled.
  void record_batch(std::vector<TraceSpan> batch);

  /// Lifetime totals (monotonic; readable while tracing).
  struct Stats {
    std::uint64_t spans_recorded = 0;  // spans that entered the ring
    std::uint64_t spans_evicted = 0;   // spans pushed out by capacity
    std::uint64_t traces_started = 0;  // root scopes opened
  };
  Stats stats() const;

  /// The newest `last` spans (oldest-first; everything when last == 0 or
  /// >= size).  A consistent snapshot under the ring mutex.
  std::vector<TraceSpan> snapshot(std::size_t last = 0) const;

  /// Trace Event JSON of snapshot(last): "M" process/thread metadata plus
  /// one "X" event per span with args {trace, span, parent, ...}.
  util::Json trace_events_json(std::size_t last = 0) const;

  /// Drops every retained span (tests; stats are preserved).
  void clear();

 private:
  friend class SpanScope;

  std::uint64_t next_trace_id() {
    return trace_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  std::uint64_t next_span_id() {
    return span_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Moves a completed batch into the ring (one lock per batch).
  void flush(std::vector<TraceSpan>& batch);

  TracerOptions options_;
  std::atomic<std::uint64_t> trace_ids_{0};
  std::atomic<std::uint64_t> span_ids_{0};
  mutable std::mutex mutex_;
  /// Ring storage: ring_[(head_ + i) % capacity] for i in [0, size_).
  std::vector<TraceSpan> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace wfr::obs

#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::obs {

void Counter::increment(double delta) {
  util::require(delta >= 0.0, "counter increments must be >= 0");
  value_ += delta;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    util::require(bounds_[i - 1] < bounds_[i],
                  "histogram bucket bounds must be strictly increasing");
  }
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }
double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  util::require(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      if (i == counts_.size() - 1) return max_;  // overflow bucket
      // Linear interpolation inside the bucket, clamped to observed range.
      const double lo = i == 0 ? min_ : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          (target - cumulative) / static_cast<double>(counts_[i]);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

std::vector<double> exponential_buckets(double start, double factor,
                                        int count) {
  util::require(start > 0.0, "bucket start must be > 0");
  util::require(factor > 1.0, "bucket factor must be > 1");
  util::require(count >= 1, "bucket count must be >= 1");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> default_seconds_buckets() {
  return exponential_buckets(1e-3, 10.0, 9);  // 1 ms .. 1e5 s
}

void MetricsRegistry::check_unique(std::string_view name,
                                   const char* kind) const {
  int holders = 0;
  const char* held_as = nullptr;
  if (counters_.find(name) != counters_.end()) {
    ++holders;
    held_as = "counter";
  }
  if (gauges_.find(name) != gauges_.end()) {
    ++holders;
    held_as = "gauge";
  }
  if (histograms_.find(name) != histograms_.end()) {
    ++holders;
    held_as = "histogram";
  }
  util::require(
      holders == 0 || std::string_view(held_as) == kind,
      util::format("metric '%s' already registered as a %s, requested as "
                   "a %s",
                   std::string(name).c_str(), held_as, kind));
}

Counter& MetricsRegistry::counter(std::string_view name) {
  check_unique(name, "counter");
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  check_unique(name, "gauge");
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  check_unique(name, "histogram");
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string(name), Histogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

namespace {

/// Prometheus sample value: the shared shortest-round-trip formatter keeps
/// bucket labels readable (le="1e-05", not le="1.0000000000000001e-05") and
/// byte-identical to the same value serialized as JSON elsewhere.
std::string format_sample(double value) { return util::format_double(value); }

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9'))
    out.insert(out.begin(), '_');
  return out;
}

std::string MetricsRegistry::prometheus_text() const {
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string metric = sanitize_metric_name(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + format_sample(counter.value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string metric = sanitize_metric_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + format_sample(gauge.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string metric = sanitize_metric_name(name);
    out += "# TYPE " + metric + " histogram\n";
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      const std::string le =
          i < bounds.size() ? format_sample(bounds[i]) : "+Inf";
      out += metric + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += metric + "_sum " + format_sample(h.sum()) + "\n";
    out += metric + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

util::Json MetricsRegistry::snapshot() const {
  util::JsonObject counters;
  for (const auto& [name, counter] : counters_)
    counters.set(name, counter.value());
  util::JsonObject gauges;
  for (const auto& [name, gauge] : gauges_) gauges.set(name, gauge.value());
  util::JsonObject histograms;
  for (const auto& [name, h] : histograms_) {
    util::JsonObject entry;
    entry.set("count", static_cast<double>(h.count()));
    entry.set("sum", h.sum());
    entry.set("mean", h.mean());
    entry.set("min", h.min());
    entry.set("max", h.max());
    entry.set("p50", h.quantile(0.50));
    entry.set("p95", h.quantile(0.95));
    util::JsonArray buckets;
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      util::JsonObject bucket;
      if (i < bounds.size()) {
        bucket.set("le", bounds[i]);
      } else {
        bucket.set("le", "inf");
      }
      bucket.set("count", static_cast<double>(counts[i]));
      buckets.push_back(util::Json(std::move(bucket)));
    }
    entry.set("buckets", util::Json(std::move(buckets)));
    histograms.set(name, util::Json(std::move(entry)));
  }
  util::JsonObject root;
  root.set("counters", util::Json(std::move(counters)));
  root.set("gauges", util::Json(std::move(gauges)));
  root.set("histograms", util::Json(std::move(histograms)));
  return util::Json(std::move(root));
}

}  // namespace wfr::obs

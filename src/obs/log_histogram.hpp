#pragma once
// Log-bucketed high-dynamic-range histogram with exact-count percentile
// queries — the latency instrument behind serve's per-endpoint p50/p99
// telemetry (docs/OBSERVABILITY.md).
//
// The fixed-bucket obs::Histogram is fine for coarse distributions but
// cannot answer "what is p99?" with a useful error bound: a decade-wide
// bucket gives a decade-wide answer.  This histogram spaces bucket
// boundaries geometrically (default growth 1.05 over 1 us .. 100 s, ~378
// buckets), so any recorded value is off by at most half a bucket —
// ~2.5% relative error — while percentile *ranks* are exact: the query
// walks true per-bucket counts to the ceil(q * count)-th sample, there is
// no interpolation between population mass that was never observed.
//
// Concurrency: observe() is lock-free (relaxed atomic adds on the bucket
// counters plus CAS loops for sum/min/max), so request workers record
// latency without serializing on any mutex — the fix for the serve::App
// metrics_mutex_ hot-path contention.  Queries read the counters with
// relaxed loads; under concurrent writers a query is a point-in-time
// approximation, which is exactly what a /metrics scrape wants.
//
// Layout: bucket 0 holds sub-resolution samples (x <= min), buckets
// 1..N hold [min * g^(i-1), min * g^i), and the last bucket holds
// overflow samples (x >= max, reported at the exact observed maximum).
// Two histograms with equal options have equal layouts and merge
// deterministically by per-bucket addition.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace wfr::obs {

struct LogHistogramOptions {
  /// Smallest resolved value; anything at or below lands in the
  /// sub-resolution bucket.  Must be > 0.
  double min_value = 1e-6;
  /// Largest resolved value; anything at or above lands in the overflow
  /// bucket.  Must be > min_value.
  double max_value = 100.0;
  /// Geometric bucket growth factor; relative quantile error is about
  /// (growth - 1) / 2.  Must be > 1.
  double growth = 1.05;
};

class LogHistogram {
 public:
  explicit LogHistogram(LogHistogramOptions options = {});

  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Records one sample.  Lock-free; safe from any thread.  Negative
  /// samples are clamped into the sub-resolution bucket.
  void observe(double x);

  std::uint64_t count() const;
  double sum() const;
  double mean() const;
  /// Exact smallest/largest observed sample; 0 when empty.
  double min() const;
  double max() const;

  /// The q-quantile (q in [0, 1]) by exact rank: the value of the bucket
  /// containing the ceil(q * count)-th smallest sample, reported at the
  /// bucket's geometric midpoint and clamped to the observed [min, max].
  /// 0 when empty.  Monotone in q by construction.
  double quantile(double q) const;

  /// Adds every bucket (and count/sum/min/max) of `other` into this
  /// histogram.  Both must share the same options; throws
  /// InvalidArgument otherwise.  Deterministic: merging the same
  /// snapshots in any order yields the same counts.
  void merge(const LogHistogram& other);

  /// One retained bucket: upper bound (+inf for the overflow bucket,
  /// encoded as infinity()) and its non-cumulative count.
  struct Bucket {
    double upper_bound = 0.0;
    std::uint64_t count = 0;
  };
  /// The non-empty buckets in ascending bound order.
  std::vector<Bucket> nonzero_buckets() const;

  /// Total number of bucket slots (sub-resolution + resolved + overflow).
  std::size_t bucket_slots() const { return counts_.size(); }
  const LogHistogramOptions& options() const { return options_; }

  /// Prometheus 0.0.4 histogram exposition under `metric` (already
  /// sanitized): cumulative `_bucket{le="..."}` series for each non-empty
  /// bucket plus the implicit +Inf, then `_sum` and `_count`.  Parsing
  /// the cumulative series back recovers nonzero_buckets() exactly
  /// (round-trip tested).
  std::string prometheus_text(std::string_view metric) const;

  /// Deterministic JSON snapshot {count, sum, min, max, p50, p95, p99,
  /// p999, buckets: [{"le": bound, "count": n}, ...]} (non-empty buckets
  /// only).
  util::Json snapshot() const;

  /// Drops all samples (tests).
  void reset();

 private:
  std::size_t bucket_index(double x) const;
  /// Upper bound of bucket `i`; +inf for the overflow bucket.
  double upper_bound(std::size_t i) const;
  /// Representative value of bucket `i` for quantile reporting.
  double representative(std::size_t i) const;

  LogHistogramOptions options_;
  double inv_log_growth_ = 0.0;
  /// counts_[0] sub-resolution, counts_[1..resolved_] geometric,
  /// counts_[resolved_ + 1] overflow.
  std::size_t resolved_ = 0;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// Observed extrema as atomically CAS-updated doubles.
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

}  // namespace wfr::obs

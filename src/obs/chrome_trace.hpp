#pragma once
// Chrome/Perfetto trace-event exporter.
//
// Serializes a trace::WorkflowTrace (and optionally the shared-resource
// time series from obs::ResourceProbe) into the Trace Event Format that
// chrome://tracing and https://ui.perfetto.dev open directly:
//
//   * one "process" per workflow (pid 1, named after the workflow);
//   * one "thread" (track) per task lane, named after the task;
//   * a complete ("X") duration event per task and per trace::Span, so
//     phases nest under their task slice;
//   * a second process (pid 2, "shared resources") holding counter ("C")
//     tracks per resource: active/finite flow counts, instantaneous
//     utilization, and per-flow fair-share bandwidth.
//
// Timestamps are microseconds (the format's unit); events are sorted by
// timestamp with metadata first, so consumers that stream see a
// monotonically ordered file.

#include <string>
#include <vector>

#include "obs/probe.hpp"
#include "trace/timeline.hpp"
#include "util/json.hpp"

namespace wfr::obs {

struct ChromeTraceOptions {
  /// Emit one enclosing "X" slice per task in addition to its phase
  /// slices (phases then nest under the task in the UI).
  bool task_slices = true;
  /// Upper bound on counter events per resource track; longer series are
  /// decimated evenly (the first and last samples always survive).
  /// 0 means unlimited.
  std::size_t max_counter_events_per_resource = 8192;
};

/// Builds the trace as a JSON object: {"displayTimeUnit": "ms",
/// "traceEvents": [...]}.
util::Json chrome_trace_json(
    const trace::WorkflowTrace& trace,
    const std::vector<ResourceTimeSeries>& resources = {},
    const ChromeTraceOptions& options = {});

/// Serializes chrome_trace_json() to `path` (compact, one file).
void write_chrome_trace(
    const std::string& path, const trace::WorkflowTrace& trace,
    const std::vector<ResourceTimeSeries>& resources = {},
    const ChromeTraceOptions& options = {});

}  // namespace wfr::obs

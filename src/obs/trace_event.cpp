#include "obs/trace_event.hpp"

#include <algorithm>
#include <utility>

namespace wfr::obs {

namespace {
constexpr double kMicros = 1e6;
}  // namespace

util::Json trace_metadata_event(int pid, int tid, const char* kind,
                                const std::string& name) {
  util::JsonObject e;
  e.set("ph", "M");
  e.set("pid", pid);
  e.set("tid", tid);
  e.set("name", kind);
  util::JsonObject args;
  args.set("name", name);
  e.set("args", util::Json(std::move(args)));
  return util::Json(std::move(e));
}

util::Json trace_complete_event(int pid, int tid, const std::string& name,
                                const std::string& category,
                                double start_seconds, double duration_seconds,
                                util::JsonObject args) {
  util::JsonObject e;
  e.set("ph", "X");
  e.set("pid", pid);
  e.set("tid", tid);
  e.set("name", name);
  e.set("cat", category);
  e.set("ts", start_seconds * kMicros);
  e.set("dur", duration_seconds * kMicros);
  e.set("args", util::Json(std::move(args)));
  return util::Json(std::move(e));
}

util::Json trace_counter_event(int pid, const std::string& name,
                               double time_seconds, util::JsonObject values) {
  util::JsonObject e;
  e.set("ph", "C");
  e.set("pid", pid);
  e.set("tid", 0);
  e.set("name", name);
  e.set("ts", time_seconds * kMicros);
  e.set("args", util::Json(std::move(values)));
  return util::Json(std::move(e));
}

double trace_event_ts(const util::Json& event) {
  return event.as_object().contains("ts") ? event.at("ts").as_number() : -1.0;
}

void sort_trace_events(util::JsonArray& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const util::Json& a, const util::Json& b) {
                     return trace_event_ts(a) < trace_event_ts(b);
                   });
}

util::Json trace_events_envelope(util::JsonArray events) {
  util::JsonObject root;
  root.set("displayTimeUnit", "ms");
  root.set("traceEvents", util::Json(std::move(events)));
  return util::Json(std::move(root));
}

}  // namespace wfr::obs

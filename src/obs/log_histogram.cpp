#include "obs/log_histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// CAS-min/max over atomic doubles (relaxed: extrema are monotone, order
/// does not matter).
void atomic_min(std::atomic<double>& target, double x) {
  double current = target.load(std::memory_order_relaxed);
  while (x < current && !target.compare_exchange_weak(
                            current, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double x) {
  double current = target.load(std::memory_order_relaxed);
  while (x > current && !target.compare_exchange_weak(
                            current, x, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double x) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + x,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

LogHistogram::LogHistogram(LogHistogramOptions options) : options_(options) {
  util::require(options_.min_value > 0.0,
                "log histogram min_value must be > 0");
  util::require(options_.max_value > options_.min_value,
                "log histogram max_value must exceed min_value");
  util::require(options_.growth > 1.0, "log histogram growth must be > 1");
  inv_log_growth_ = 1.0 / std::log(options_.growth);
  resolved_ = static_cast<std::size_t>(std::ceil(
      std::log(options_.max_value / options_.min_value) * inv_log_growth_));
  // counts_[0] sub-resolution + resolved_ geometric + 1 overflow.
  counts_ = std::vector<std::atomic<std::uint64_t>>(resolved_ + 2);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

std::size_t LogHistogram::bucket_index(double x) const {
  if (!(x > options_.min_value)) return 0;  // also negatives and NaN
  if (x >= options_.max_value) return resolved_ + 1;
  const std::size_t i = 1 + static_cast<std::size_t>(std::floor(
                                std::log(x / options_.min_value) *
                                inv_log_growth_));
  return std::min(i, resolved_);
}

double LogHistogram::upper_bound(std::size_t i) const {
  if (i == 0) return options_.min_value;
  if (i > resolved_) return kInf;
  return options_.min_value * std::pow(options_.growth, static_cast<double>(i));
}

double LogHistogram::representative(std::size_t i) const {
  if (i == 0) return options_.min_value;
  if (i > resolved_) return max();  // overflow reports the exact maximum
  const double hi = upper_bound(i);
  return hi / std::sqrt(options_.growth);  // geometric midpoint
}

void LogHistogram::observe(double x) {
  counts_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

std::uint64_t LogHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double LogHistogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}

double LogHistogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double LogHistogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double LogHistogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double LogHistogram::quantile(double q) const {
  util::require(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  // Exact rank: the ceil(q * total)-th smallest sample, at least the 1st.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank)
      return std::clamp(representative(i), min(), max());
  }
  return max();  // concurrent writers mid-query: fall back to the extreme
}

void LogHistogram::merge(const LogHistogram& other) {
  util::require(options_.min_value == other.options_.min_value &&
                    options_.max_value == other.options_.max_value &&
                    options_.growth == other.options_.growth,
                "cannot merge log histograms with different layouts");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t n = other.counts_[i].load(std::memory_order_relaxed);
    if (n != 0) counts_[i].fetch_add(n, std::memory_order_relaxed);
  }
  const std::uint64_t n = other.count();
  if (n == 0) return;
  count_.fetch_add(n, std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
  atomic_min(min_, other.min());
  atomic_max(max_, other.max());
}

std::vector<LogHistogram::Bucket> LogHistogram::nonzero_buckets() const {
  std::vector<Bucket> buckets;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets.push_back(Bucket{upper_bound(i), n});
  }
  return buckets;
}

std::string LogHistogram::prometheus_text(std::string_view metric) const {
  const std::string name(metric);
  std::string out = "# TYPE " + name + " histogram\n";
  std::uint64_t cumulative = 0;
  bool saw_inf = false;
  for (const Bucket& bucket : nonzero_buckets()) {
    cumulative += bucket.count;
    const bool inf = std::isinf(bucket.upper_bound);
    saw_inf = saw_inf || inf;
    const std::string le =
        inf ? "+Inf" : util::format_double(bucket.upper_bound);
    out += name + "_bucket{le=\"" + le + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  if (!saw_inf)
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
  out += name + "_sum " + util::format_double(sum()) + "\n";
  out += name + "_count " + std::to_string(count()) + "\n";
  return out;
}

util::Json LogHistogram::snapshot() const {
  util::JsonObject entry;
  entry.set("count", static_cast<double>(count()));
  entry.set("sum", sum());
  entry.set("min", min());
  entry.set("max", max());
  entry.set("p50", quantile(0.50));
  entry.set("p95", quantile(0.95));
  entry.set("p99", quantile(0.99));
  entry.set("p999", quantile(0.999));
  util::JsonArray buckets;
  for (const Bucket& bucket : nonzero_buckets()) {
    util::JsonObject b;
    if (std::isinf(bucket.upper_bound)) {
      b.set("le", "inf");
    } else {
      b.set("le", bucket.upper_bound);
    }
    b.set("count", static_cast<double>(bucket.count));
    buckets.push_back(util::Json(std::move(b)));
  }
  entry.set("buckets", util::Json(std::move(buckets)));
  return util::Json(std::move(entry));
}

void LogHistogram::reset() {
  for (std::atomic<std::uint64_t>& c : counts_)
    c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

}  // namespace wfr::obs

#include "obs/chrome_trace.hpp"

#include "obs/trace_event.hpp"
#include "util/error.hpp"
#include "util/file.hpp"

namespace wfr::obs {

namespace {

constexpr int kWorkflowPid = 1;
constexpr int kResourcePid = 2;

/// Counter tracks for one resource: one event per surviving sample (step
/// function), plus a closing zero so tracks do not dangle at the last
/// value forever.
void append_resource_counters(const ResourceTimeSeries& series,
                              std::size_t max_events,
                              util::JsonArray* events) {
  const std::vector<ResourceSample>& samples = series.samples();
  if (samples.empty()) return;
  // Even decimation keeping first and last.
  std::size_t stride = 1;
  if (max_events != 0 && samples.size() > max_events)
    stride = (samples.size() + max_events - 1) / max_events;
  const std::string flows_track = series.name() + " flows";
  const std::string rate_track = series.name() + " bandwidth";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i % stride != 0 && i != samples.size() - 1) continue;
    const ResourceSample& s = samples[i];
    util::JsonObject flows;
    flows.set("active", s.active_flows);
    flows.set("finite", s.finite_flows);
    events->push_back(trace_counter_event(kResourcePid, flows_track,
                                          s.start_seconds, std::move(flows)));
    util::JsonObject rate;
    rate.set("per_flow_GBps", s.per_flow_rate / 1e9);
    rate.set("utilization_pct", 100.0 * s.utilization());
    events->push_back(trace_counter_event(kResourcePid, rate_track,
                                          s.start_seconds, std::move(rate)));
  }
  const double end = samples.back().end_seconds();
  util::JsonObject zero_flows;
  zero_flows.set("active", 0);
  zero_flows.set("finite", 0);
  events->push_back(trace_counter_event(kResourcePid, flows_track, end,
                                        std::move(zero_flows)));
  util::JsonObject zero_rate;
  zero_rate.set("per_flow_GBps", 0.0);
  zero_rate.set("utilization_pct", 0.0);
  events->push_back(trace_counter_event(kResourcePid, rate_track, end,
                                        std::move(zero_rate)));
}

}  // namespace

util::Json chrome_trace_json(const trace::WorkflowTrace& trace,
                             const std::vector<ResourceTimeSeries>& resources,
                             const ChromeTraceOptions& options) {
  util::JsonArray events;

  // Process + thread naming metadata.
  const std::string workflow =
      trace.name().empty() ? "workflow" : trace.name();
  events.push_back(
      trace_metadata_event(kWorkflowPid, 0, "process_name", workflow));
  if (!resources.empty()) {
    events.push_back(trace_metadata_event(kResourcePid, 0, "process_name",
                                          "shared resources"));
  }
  for (const trace::TaskRecord& record : trace.records()) {
    const int tid = static_cast<int>(record.task) + 1;
    std::string lane = record.name;
    if (record.nodes > 1)
      lane += " (" + std::to_string(record.nodes) + " nodes)";
    events.push_back(
        trace_metadata_event(kWorkflowPid, tid, "thread_name", lane));
  }

  // Task + phase slices.
  for (const trace::TaskRecord& record : trace.records()) {
    const int tid = static_cast<int>(record.task) + 1;
    if (options.task_slices && record.duration() > 0.0) {
      util::JsonObject args;
      args.set("nodes", record.nodes);
      args.set("attempts", record.attempts);
      events.push_back(trace_complete_event(
          kWorkflowPid, tid, record.name,
          record.kind.empty() ? "task" : record.kind, record.start_seconds,
          record.duration(), std::move(args)));
    }
    for (const trace::Span& span : record.spans) {
      util::JsonObject args;
      args.set("task", record.name);
      events.push_back(trace_complete_event(
          kWorkflowPid, tid, trace::phase_name(span.phase), "phase",
          span.start_seconds, span.duration(), std::move(args)));
    }
  }

  // Resource counter tracks.
  for (const ResourceTimeSeries& series : resources)
    append_resource_counters(series,
                             options.max_counter_events_per_resource,
                             &events);

  sort_trace_events(events);
  return trace_events_envelope(std::move(events));
}

void write_chrome_trace(const std::string& path,
                        const trace::WorkflowTrace& trace,
                        const std::vector<ResourceTimeSeries>& resources,
                        const ChromeTraceOptions& options) {
  const std::string text =
      chrome_trace_json(trace, resources, options).dump();
  util::write_file(path, text + "\n");
}

}  // namespace wfr::obs

#pragma once
// The bundle a caller hands to the runner (RunOptions::observe) to turn
// observation on: a metrics registry for engine/runner self-metrics and a
// resource probe for the time-resolved shared-resource series.  Both stay
// owned by the caller so they outlive the run and can be exported,
// merged, or compared across runs.

#include "obs/probe.hpp"
#include "obs/registry.hpp"

namespace wfr::obs {

struct Observation {
  MetricsRegistry registry;
  ResourceProbe probe;
  /// Record the shared-resource time series (the registry metrics are
  /// always collected when observation is attached).
  bool sample_resources = true;

  /// Combined export: {"metrics": <registry snapshot>,
  ///                   "resources": [<per-resource summary>, ...]}.
  /// This is what `wfr run --metrics` writes.
  util::Json to_json() const {
    util::JsonObject root;
    root.set("metrics", registry.snapshot());
    util::JsonArray resources;
    for (const ResourceSummary& s : probe.summaries())
      resources.push_back(s.to_json());
    root.set("resources", util::Json(std::move(resources)));
    return util::Json(std::move(root));
  }
};

}  // namespace wfr::obs

#pragma once
// Time-resolved shared-resource probes.
//
// The engine's fair-share advance is piecewise constant: between two
// events, every resource has a fixed flow population and per-flow rate.
// The probe records exactly those intervals — one sample per advance in
// which the resource had flows, coalescing contiguous intervals whose
// population did not change — so the time series is a lossless record of
// the fair-share schedule: integrating (per-flow rate x finite flows)
// over the samples reproduces Simulator::completed_volume exactly.
//
// This is what makes bottleneck *attribution* (not just detection)
// possible: end-state aggregates say the filesystem averaged 60%
// utilization; the time series says it was saturated for the middle
// twenty minutes while sixty analysis tasks drained and idle otherwise.
//
// Recording never perturbs the simulation: the probe only reads state the
// engine already computed, and a detached probe costs one branch per
// advance.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace wfr::obs {

/// One piecewise-constant interval of one shared resource's state.
struct ResourceSample {
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  /// Flows sharing the resource during the interval (finite + background).
  int active_flows = 0;
  /// Finite (workflow) flows only; background contention is the difference.
  int finite_flows = 0;
  /// Fair-share bandwidth each flow received (bytes/s).
  double per_flow_rate = 0.0;
  /// Volume delivered to finite flows during the interval.
  double delivered_bytes = 0.0;
  /// Running total of delivered volume at the end of the interval.
  double cumulative_bytes = 0.0;

  double end_seconds() const { return start_seconds + duration_seconds; }
  /// Fraction of capacity delivered to finite flows: 1.0 when saturated
  /// by workflow traffic, < 1 when background flows steal shares.
  double utilization() const {
    return active_flows == 0
               ? 0.0
               : static_cast<double>(finite_flows) /
                     static_cast<double>(active_flows);
  }
};

/// Utilization summary of one resource over a run, time-weighted over the
/// intervals during which the resource had at least one flow.
struct ResourceSummary {
  std::string name;
  double capacity = 0.0;            // bytes/s
  double active_seconds = 0.0;      // time with >= 1 flow (any kind)
  double busy_seconds = 0.0;        // time with >= 1 finite flow
  double delivered_bytes = 0.0;     // to finite flows
  double p50_utilization = 0.0;     // time-weighted, over active time
  double p95_utilization = 0.0;
  double max_utilization = 0.0;
  double mean_utilization = 0.0;
  int peak_active_flows = 0;
  int peak_finite_flows = 0;

  util::Json to_json() const;
};

/// The recorded time series of one shared resource.
class ResourceTimeSeries {
 public:
  ResourceTimeSeries() = default;
  ResourceTimeSeries(std::string name, double capacity)
      : name_(std::move(name)), capacity_(capacity) {}

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }
  void set_capacity(double capacity) { capacity_ = capacity; }

  const std::vector<ResourceSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  /// Appends an interval; contiguous intervals with the same flow
  /// population merge into the previous sample.
  void record(double start, double dt, int active, int finite,
              double per_flow_rate, double delivered);

  /// Drops all recorded samples (name/capacity stay; storage is kept for
  /// reuse across runs).
  void clear();

  /// Total volume delivered to finite flows (== last sample's cumulative).
  double delivered_bytes() const;

  /// Time-weighted p50/p95/max/mean utilization and peaks.
  ResourceSummary summarize() const;

  /// {"name", "capacity", "samples": [{t, dur, active, finite,
  ///  per_flow_rate, delivered}, ...]}
  util::Json to_json() const;

 private:
  std::string name_;
  double capacity_ = 0.0;
  double cumulative_ = 0.0;
  std::vector<ResourceSample> samples_;
};

/// The engine-facing sampler: one ResourceTimeSeries per registered
/// resource, indexed by the engine's ResourceId.  Attach via
/// sim::Simulator::attach_probe(); the engine registers its resources and
/// feeds every advance interval.
class ResourceProbe {
 public:
  /// Registers resource `id` (idempotent; re-registration updates name
  /// and capacity but keeps recorded samples).
  void register_resource(std::uint32_t id, std::string name,
                         double capacity);
  void set_capacity(std::uint32_t id, double capacity);

  /// Records one advance interval for resource `id`.
  void record(std::uint32_t id, double start, double dt, int active,
              int finite, double per_flow_rate, double delivered);

  const std::vector<ResourceTimeSeries>& series() const { return series_; }
  std::vector<ResourceTimeSeries>& series() { return series_; }

  /// Series for the resource named `name`; nullptr when absent.
  const ResourceTimeSeries* find(std::string_view name) const;

  /// Summaries of every registered resource, in registration order.
  std::vector<ResourceSummary> summaries() const;

  /// Clears every series' samples, keeping registrations — lets one probe
  /// observe several runs back to back without reallocation.
  void reset();

 private:
  std::vector<ResourceTimeSeries> series_;
};

}  // namespace wfr::obs

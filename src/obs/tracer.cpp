#include "obs/tracer.hpp"

#include <chrono>

#include "obs/trace_event.hpp"
#include "util/error.hpp"

namespace wfr::obs {

namespace {

/// Small stable per-thread slot for the Trace Event "tid" track.
std::atomic<std::uint32_t> g_thread_slots{0};
std::uint32_t thread_slot() {
  thread_local const std::uint32_t slot =
      g_thread_slots.fetch_add(1, std::memory_order_relaxed) + 1;
  return slot;
}

/// The per-thread open-trace context.  Only one tracer may have a trace
/// open on a thread at a time; spans for a foreign tracer that would nest
/// inside it are dropped (they cannot be parented coherently).
struct ThreadTraceState {
  Tracer* owner = nullptr;
  std::uint64_t trace_id = 0;
  std::uint64_t current_parent = 0;
  int depth = 0;
  std::vector<TraceSpan> pending;
};

ThreadTraceState& tls_state() {
  thread_local ThreadTraceState state;
  return state;
}

}  // namespace

SpanScope::SpanScope(Tracer* tracer, std::string_view name,
                     std::string_view category)
    : SpanScope(tracer, name, category,
                tracer != nullptr && tracer->enabled() ? Tracer::now_ns()
                                                       : 0) {}

SpanScope::SpanScope(Tracer* tracer, std::string_view name,
                     std::string_view category, std::uint64_t begin_ns) {
  if (tracer == nullptr || !tracer->enabled()) return;
  ThreadTraceState& state = tls_state();
  if (state.depth > 0 && state.owner != tracer) return;  // foreign nesting
  tracer_ = tracer;
  if (state.depth == 0) {
    state.owner = tracer;
    state.trace_id = tracer->next_trace_id();
    state.current_parent = 0;
    state.pending.clear();
  }
  ++state.depth;
  span_.trace_id = state.trace_id;
  span_.span_id = tracer->next_span_id();
  span_.parent_id = state.current_parent;
  previous_parent_ = state.current_parent;
  state.current_parent = span_.span_id;
  span_.name.assign(name);
  span_.category.assign(category);
  span_.begin_ns = begin_ns;
  span_.thread = thread_slot();
}

SpanScope::SpanScope(Tracer* tracer, std::string_view name,
                     std::string_view category, TraceRef remote_parent) {
  if (tracer == nullptr || !tracer->enabled()) return;
  ThreadTraceState& state = tls_state();
  if (state.depth > 0) {
    // A trace is already open here: ignore the remote ref and nest
    // normally (foreign-tracer nesting stays dropped, as ever).
    if (state.owner != tracer) return;
  } else {
    if (!remote_parent.valid()) return;  // nothing to continue
    state.owner = tracer;
    state.trace_id = remote_parent.trace_id;
    state.current_parent = remote_parent.span_id;
    state.pending.clear();
  }
  tracer_ = tracer;
  ++state.depth;
  span_.trace_id = state.trace_id;
  span_.span_id = tracer->next_span_id();
  span_.parent_id = state.current_parent;
  previous_parent_ = state.current_parent;
  state.current_parent = span_.span_id;
  span_.name.assign(name);
  span_.category.assign(category);
  span_.begin_ns = Tracer::now_ns();
  span_.thread = thread_slot();
}

SpanScope::~SpanScope() {
  if (tracer_ == nullptr) return;
  span_.end_ns = Tracer::now_ns();
  ThreadTraceState& state = tls_state();
  state.current_parent = previous_parent_;
  state.pending.push_back(std::move(span_));
  if (--state.depth == 0) {
    tracer_->flush(state.pending);
    state.owner = nullptr;
  }
}

void SpanScope::arg(std::string_view key, std::string value) {
  if (tracer_ == nullptr) return;
  span_.args.emplace_back(std::string(key), std::move(value));
}

Tracer::Tracer(TracerOptions options) : options_(options) {
  util::require(options_.capacity >= 1, "tracer capacity must be >= 1");
}

std::uint32_t Tracer::current_thread_slot() { return thread_slot(); }

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::record_span(
    std::string_view name, std::string_view category, std::uint64_t begin_ns,
    std::uint64_t end_ns,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!options_.enabled) return;
  TraceSpan span;
  span.name.assign(name);
  span.category.assign(category);
  span.begin_ns = begin_ns;
  span.end_ns = end_ns;
  span.thread = thread_slot();
  span.args = std::move(args);

  ThreadTraceState& state = tls_state();
  if (state.depth > 0 && state.owner == this) {
    // Joins the open trace on this thread as a child of the current span
    // and flushes with it.
    span.trace_id = state.trace_id;
    span.span_id = next_span_id();
    span.parent_id = state.current_parent;
    state.pending.push_back(std::move(span));
    return;
  }
  // Standalone single-span trace (e.g. per-connection queue-wait, sweep
  // evaluations on pool threads).
  span.trace_id = next_trace_id();
  span.span_id = next_span_id();
  std::vector<TraceSpan> batch;
  batch.push_back(std::move(span));
  flush(batch);
}

TraceRef Tracer::begin_trace() {
  if (!options_.enabled) return {};
  TraceRef ref;
  ref.trace_id = next_trace_id();
  ref.span_id = next_span_id();
  return ref;
}

void Tracer::record_batch(std::vector<TraceSpan> batch) {
  if (!options_.enabled || batch.empty()) return;
  const std::uint32_t slot = thread_slot();
  for (TraceSpan& span : batch)
    if (span.thread == 0) span.thread = slot;
  flush(batch);
}

void Tracer::flush(std::vector<TraceSpan>& batch) {
  if (batch.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  if (ring_.size() != options_.capacity) ring_.resize(options_.capacity);
  for (TraceSpan& span : batch) {
    if (size_ == options_.capacity) {
      // Full: overwrite the oldest slot.
      ring_[head_] = std::move(span);
      head_ = (head_ + 1) % options_.capacity;
      ++evicted_;
    } else {
      ring_[(head_ + size_) % options_.capacity] = std::move(span);
      ++size_;
    }
    ++recorded_;
  }
  batch.clear();
}

Tracer::Stats Tracer::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  Stats stats;
  stats.spans_recorded = recorded_;
  stats.spans_evicted = evicted_;
  stats.traces_started = trace_ids_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<TraceSpan> Tracer::snapshot(std::size_t last) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t take =
      (last == 0 || last > size_) ? size_ : last;
  std::vector<TraceSpan> spans;
  spans.reserve(take);
  for (std::size_t i = size_ - take; i < size_; ++i)
    spans.push_back(ring_[(head_ + i) % options_.capacity]);
  return spans;
}

util::Json Tracer::trace_events_json(std::size_t last) const {
  const std::vector<TraceSpan> spans = snapshot(last);
  util::JsonArray events;
  events.push_back(trace_metadata_event(1, 0, "process_name", "wfr serve"));

  // One thread_name track per distinct slot present in the export.
  std::vector<std::uint32_t> threads;
  for (const TraceSpan& span : spans) {
    bool seen = false;
    for (const std::uint32_t t : threads) seen = seen || t == span.thread;
    if (!seen) threads.push_back(span.thread);
  }
  for (const std::uint32_t t : threads) {
    events.push_back(trace_metadata_event(
        1, static_cast<int>(t), "thread_name",
        "worker " + std::to_string(t)));
  }

  for (const TraceSpan& span : spans) {
    util::JsonObject args;
    args.set("trace", static_cast<double>(span.trace_id));
    args.set("span", static_cast<double>(span.span_id));
    args.set("parent", static_cast<double>(span.parent_id));
    for (const auto& [key, value] : span.args)
      args.set(key, util::Json(value));
    events.push_back(trace_complete_event(
        1, static_cast<int>(span.thread), span.name, span.category,
        static_cast<double>(span.begin_ns) * 1e-9,
        static_cast<double>(span.end_ns - span.begin_ns) * 1e-9,
        std::move(args)));
  }

  sort_trace_events(events);
  return trace_events_envelope(std::move(events));
}

void Tracer::clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  head_ = 0;
  size_ = 0;
}

}  // namespace wfr::obs

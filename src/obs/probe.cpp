#include "obs/probe.hpp"

#include <algorithm>
#include <cmath>

#include "math/stats.hpp"
#include "util/error.hpp"

namespace wfr::obs {

namespace {

/// Time-weighted percentile of (value, weight) pairs, p in [0, 100]:
/// the smallest value v such that intervals with value <= v cover at
/// least p% of the total weight.  The classic percentile in math::stats
/// is per-observation; samples here are *intervals* of very different
/// lengths, so each must count by its duration.
double weighted_percentile(std::vector<std::pair<double, double>> pairs,
                           double p) {
  if (pairs.empty()) return 0.0;
  std::sort(pairs.begin(), pairs.end());
  double total = 0.0;
  for (const auto& [value, weight] : pairs) total += weight;
  if (total <= 0.0) return pairs.back().first;
  const double target = total * p / 100.0;
  double cumulative = 0.0;
  for (const auto& [value, weight] : pairs) {
    cumulative += weight;
    if (cumulative >= target) return value;
  }
  return pairs.back().first;
}

}  // namespace

util::Json ResourceSummary::to_json() const {
  util::JsonObject o;
  o.set("name", name);
  o.set("capacity_bytes_per_s", capacity);
  o.set("active_seconds", active_seconds);
  o.set("busy_seconds", busy_seconds);
  o.set("delivered_bytes", delivered_bytes);
  o.set("p50_utilization", p50_utilization);
  o.set("p95_utilization", p95_utilization);
  o.set("max_utilization", max_utilization);
  o.set("mean_utilization", mean_utilization);
  o.set("peak_active_flows", peak_active_flows);
  o.set("peak_finite_flows", peak_finite_flows);
  return util::Json(std::move(o));
}

void ResourceTimeSeries::record(double start, double dt, int active,
                                int finite, double per_flow_rate,
                                double delivered) {
  cumulative_ += delivered;
  if (!samples_.empty()) {
    ResourceSample& last = samples_.back();
    // Coalesce contiguous intervals with an unchanged population: the
    // fair-share state is identical, so one longer sample carries the
    // same information and the series stays bounded by the number of
    // population changes, not the number of events.
    const bool contiguous =
        std::abs(last.end_seconds() - start) <=
        1e-9 * std::max(1.0, std::abs(start));
    if (contiguous && last.active_flows == active &&
        last.finite_flows == finite) {
      last.duration_seconds += dt;
      last.delivered_bytes += delivered;
      last.cumulative_bytes = cumulative_;
      return;
    }
  }
  ResourceSample sample;
  sample.start_seconds = start;
  sample.duration_seconds = dt;
  sample.active_flows = active;
  sample.finite_flows = finite;
  sample.per_flow_rate = per_flow_rate;
  sample.delivered_bytes = delivered;
  sample.cumulative_bytes = cumulative_;
  samples_.push_back(sample);
}

void ResourceTimeSeries::clear() {
  cumulative_ = 0.0;
  samples_.clear();
}

double ResourceTimeSeries::delivered_bytes() const { return cumulative_; }

ResourceSummary ResourceTimeSeries::summarize() const {
  ResourceSummary summary;
  summary.name = name_;
  summary.capacity = capacity_;
  summary.delivered_bytes = cumulative_;
  std::vector<std::pair<double, double>> weighted;
  weighted.reserve(samples_.size());
  math::Accumulator acc;
  double utilization_seconds = 0.0;
  for (const ResourceSample& s : samples_) {
    summary.active_seconds += s.duration_seconds;
    if (s.finite_flows > 0) summary.busy_seconds += s.duration_seconds;
    summary.peak_active_flows =
        std::max(summary.peak_active_flows, s.active_flows);
    summary.peak_finite_flows =
        std::max(summary.peak_finite_flows, s.finite_flows);
    const double u = s.utilization();
    weighted.emplace_back(u, s.duration_seconds);
    utilization_seconds += u * s.duration_seconds;
    acc.add(u);
  }
  if (!weighted.empty()) {
    summary.p50_utilization = weighted_percentile(weighted, 50.0);
    summary.p95_utilization = weighted_percentile(std::move(weighted), 95.0);
    summary.max_utilization = acc.max();
    summary.mean_utilization = summary.active_seconds > 0.0
                                   ? utilization_seconds /
                                         summary.active_seconds
                                   : acc.mean();
  }
  return summary;
}

util::Json ResourceTimeSeries::to_json() const {
  util::JsonObject o;
  o.set("name", name_);
  o.set("capacity_bytes_per_s", capacity_);
  util::JsonArray samples;
  for (const ResourceSample& s : samples_) {
    util::JsonObject entry;
    entry.set("t", s.start_seconds);
    entry.set("dur", s.duration_seconds);
    entry.set("active_flows", s.active_flows);
    entry.set("finite_flows", s.finite_flows);
    entry.set("per_flow_rate", s.per_flow_rate);
    entry.set("delivered_bytes", s.delivered_bytes);
    samples.push_back(util::Json(std::move(entry)));
  }
  o.set("samples", util::Json(std::move(samples)));
  return util::Json(std::move(o));
}

void ResourceProbe::register_resource(std::uint32_t id, std::string name,
                                      double capacity) {
  if (series_.size() <= id) series_.resize(id + 1);
  if (series_[id].name().empty()) {
    series_[id] = ResourceTimeSeries(std::move(name), capacity);
  } else {
    series_[id].set_capacity(capacity);
  }
}

void ResourceProbe::set_capacity(std::uint32_t id, double capacity) {
  util::require(id < series_.size(), "probe: unregistered resource id");
  series_[id].set_capacity(capacity);
}

void ResourceProbe::record(std::uint32_t id, double start, double dt,
                           int active, int finite, double per_flow_rate,
                           double delivered) {
  util::require(id < series_.size(), "probe: unregistered resource id");
  series_[id].record(start, dt, active, finite, per_flow_rate, delivered);
}

const ResourceTimeSeries* ResourceProbe::find(std::string_view name) const {
  for (const ResourceTimeSeries& s : series_)
    if (s.name() == name) return &s;
  return nullptr;
}

void ResourceProbe::reset() {
  for (ResourceTimeSeries& s : series_) s.clear();
}

std::vector<ResourceSummary> ResourceProbe::summaries() const {
  std::vector<ResourceSummary> out;
  out.reserve(series_.size());
  for (const ResourceTimeSeries& s : series_) out.push_back(s.summarize());
  return out;
}

}  // namespace wfr::obs

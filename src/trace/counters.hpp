#pragma once
// Lightweight per-channel counters: the paper's Section III argues workflow
// profiling must use lightweight metrics (data volume and flops per
// channel) rather than heavyweight traces.  These counters are what the
// simulator (or a real instrumented run) accumulates.

#include <string>

#include "dag/task.hpp"

namespace wfr::trace {

/// Totals per data channel for one task or one whole workflow.  Unlike
/// dag::ResourceDemand (whose node fields are per-node volumes), these are
/// absolute totals.
struct ChannelCounters {
  double external_in_bytes = 0.0;
  double fs_read_bytes = 0.0;
  double fs_write_bytes = 0.0;
  double network_bytes = 0.0;
  double flops = 0.0;
  double dram_bytes = 0.0;
  double hbm_bytes = 0.0;
  double pcie_bytes = 0.0;

  ChannelCounters& operator+=(const ChannelCounters& other);
  ChannelCounters operator+(const ChannelCounters& other) const;

  double fs_bytes() const { return fs_read_bytes + fs_write_bytes; }
  bool is_zero() const;
};

/// Expands a per-task demand into absolute totals given the task's node
/// count (node-level fields are multiplied by `nodes`).
ChannelCounters counters_from_demand(const dag::ResourceDemand& demand,
                                     int nodes);

/// Human-readable one-line summary, e.g.
/// "ext=5 TB fs=71 GB net=168 GB flops=4.39 EFLOP".
std::string describe(const ChannelCounters& counters);

}  // namespace wfr::trace

#pragma once
// Aggregation of execution traces into the summaries the Workflow Roofline
// model and the paper's breakdown figures consume: per-phase time
// breakdowns (Figs. 5b, 10b) and a Darshan-style I/O report.

#include <string>
#include <vector>

#include "trace/timeline.hpp"

namespace wfr::trace {

/// One labelled component of a stacked time-breakdown bar.
struct BreakdownComponent {
  std::string label;
  double seconds = 0.0;
};

/// A stacked bar: a scenario name plus its components.
struct TimeBreakdown {
  std::string scenario;
  std::vector<BreakdownComponent> components;

  double total_seconds() const;
  /// Returns the component with `label`, adding it (0 s) when absent.
  BreakdownComponent& component(const std::string& label);
  /// Read-only lookup; throws NotFound when absent.
  const BreakdownComponent& component(const std::string& label) const;
};

/// Summarizes a trace into a per-phase breakdown.  Phase times are summed
/// across tasks; concurrent tasks therefore contribute more than wall
/// clock, matching how the paper reports aggregate "loading data" vs
/// "analysis" time.  When `wall_clock` is true, phase times are instead
/// measured as the union of intervals (wall-clock attribution).
TimeBreakdown breakdown_by_phase(const WorkflowTrace& trace,
                                 bool wall_clock = false);

/// Darshan-style I/O characterization of one shared channel.
struct IoChannelReport {
  std::string channel;          // "external_in", "fs_read", "fs_write"
  double bytes = 0.0;           // total volume
  double busy_seconds = 0.0;    // union of intervals touching this channel
  int task_count = 0;           // tasks that used the channel
  /// bytes / busy_seconds (0 when idle).
  double achieved_bandwidth() const;
};

/// Full I/O report for a trace.
struct IoReport {
  std::vector<IoChannelReport> channels;
  const IoChannelReport& channel(const std::string& name) const;
};

/// Builds the I/O report (external_in, fs_read, fs_write channels).
IoReport io_report(const WorkflowTrace& trace);

/// Per-task one-line summaries for human inspection.
std::string describe_trace(const WorkflowTrace& trace);

}  // namespace wfr::trace

#include "trace/counters.hpp"

#include "util/strings.hpp"
#include "util/units.hpp"

namespace wfr::trace {

ChannelCounters& ChannelCounters::operator+=(const ChannelCounters& other) {
  external_in_bytes += other.external_in_bytes;
  fs_read_bytes += other.fs_read_bytes;
  fs_write_bytes += other.fs_write_bytes;
  network_bytes += other.network_bytes;
  flops += other.flops;
  dram_bytes += other.dram_bytes;
  hbm_bytes += other.hbm_bytes;
  pcie_bytes += other.pcie_bytes;
  return *this;
}

ChannelCounters ChannelCounters::operator+(const ChannelCounters& other) const {
  ChannelCounters out = *this;
  out += other;
  return out;
}

bool ChannelCounters::is_zero() const {
  return external_in_bytes == 0.0 && fs_read_bytes == 0.0 &&
         fs_write_bytes == 0.0 && network_bytes == 0.0 && flops == 0.0 &&
         dram_bytes == 0.0 && hbm_bytes == 0.0 && pcie_bytes == 0.0;
}

ChannelCounters counters_from_demand(const dag::ResourceDemand& demand,
                                     int nodes) {
  ChannelCounters c;
  const auto n = static_cast<double>(nodes);
  c.external_in_bytes = demand.external_in_bytes;
  c.fs_read_bytes = demand.fs_read_bytes;
  c.fs_write_bytes = demand.fs_write_bytes;
  c.network_bytes = demand.network_bytes;
  c.flops = demand.flops_per_node * n;
  c.dram_bytes = demand.dram_bytes_per_node * n;
  c.hbm_bytes = demand.hbm_bytes_per_node * n;
  c.pcie_bytes = demand.pcie_bytes_per_node * n;
  return c;
}

std::string describe(const ChannelCounters& c) {
  std::string out;
  auto append = [&out](const char* key, const std::string& value) {
    if (!out.empty()) out += ' ';
    out += key;
    out += '=';
    out += value;
  };
  if (c.external_in_bytes > 0.0)
    append("ext", util::format_bytes(c.external_in_bytes));
  if (c.fs_bytes() > 0.0) append("fs", util::format_bytes(c.fs_bytes()));
  if (c.network_bytes > 0.0) append("net", util::format_bytes(c.network_bytes));
  if (c.flops > 0.0) append("flops", util::format_flops(c.flops));
  if (c.dram_bytes > 0.0) append("dram", util::format_bytes(c.dram_bytes));
  if (c.hbm_bytes > 0.0) append("hbm", util::format_bytes(c.hbm_bytes));
  if (c.pcie_bytes > 0.0) append("pcie", util::format_bytes(c.pcie_bytes));
  if (out.empty()) out = "(no traffic)";
  return out;
}

}  // namespace wfr::trace

#pragma once
// Execution timelines: per-task phase spans plus channel counters, emitted
// by the simulator (or importable from real logs).  This is the input to
// workflow characterization, time-breakdown figures, and Gantt charts.

#include <string>
#include <vector>

#include "dag/task.hpp"
#include "trace/counters.hpp"
#include "util/json.hpp"

namespace wfr::trace {

/// Execution phases of one task, in canonical order.
enum class Phase {
  kOverhead,    // bash/srun/python control-flow overhead
  kExternalIn,  // loading data into the system from external storage
  kFsRead,      // reading from the shared filesystem
  kWork,        // node-local compute/memory/PCIe plus MPI communication
  kFsWrite,     // writing results to the shared filesystem
};

/// Stable lowercase name for a phase ("overhead", "external_in", ...).
const char* phase_name(Phase phase);

/// Inverse of phase_name; throws ParseError for unknown names.
Phase parse_phase(const std::string& name);

/// One contiguous interval of one phase of one task.
struct Span {
  Phase phase = Phase::kWork;
  double start_seconds = 0.0;
  double end_seconds = 0.0;

  double duration() const { return end_seconds - start_seconds; }
};

/// The record of one executed task.
struct TaskRecord {
  dag::TaskId task = dag::kInvalidTask;
  std::string name;
  std::string kind;
  int nodes = 1;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  /// Execution attempts (> 1 when failure injection restarted the task).
  int attempts = 1;
  std::vector<Span> spans;
  ChannelCounters counters;

  double duration() const { return end_seconds - start_seconds; }
  /// Total time this task spent in `phase` (sums multiple spans).
  double time_in_phase(Phase phase) const;
};

/// The record of one executed workflow.
class WorkflowTrace {
 public:
  WorkflowTrace() = default;
  explicit WorkflowTrace(std::string workflow_name)
      : name_(std::move(workflow_name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void add_record(TaskRecord record);

  const std::vector<TaskRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }

  /// Finds the record for the task named `name`; throws NotFound if absent.
  const TaskRecord& record(const std::string& name) const;

  /// End of the last task minus start of the first (0 when empty).
  double makespan_seconds() const;

  /// Sum of counters over all tasks.
  ChannelCounters total_counters() const;

  /// Sum over tasks of the time spent in `phase`.
  double total_time_in_phase(Phase phase) const;

  /// Maximum number of tasks running concurrently at any instant.
  int peak_concurrency() const;

  /// Serialization for archival / external tooling.
  util::Json to_json() const;
  static WorkflowTrace from_json(const util::Json& json);

 private:
  std::string name_;
  std::vector<TaskRecord> records_;
};

}  // namespace wfr::trace

#include "trace/summary.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace wfr::trace {

double TimeBreakdown::total_seconds() const {
  double total = 0.0;
  for (const BreakdownComponent& c : components) total += c.seconds;
  return total;
}

BreakdownComponent& TimeBreakdown::component(const std::string& label) {
  for (BreakdownComponent& c : components)
    if (c.label == label) return c;
  components.push_back(BreakdownComponent{label, 0.0});
  return components.back();
}

const BreakdownComponent& TimeBreakdown::component(
    const std::string& label) const {
  for (const BreakdownComponent& c : components)
    if (c.label == label) return c;
  throw util::NotFound("no breakdown component '" + label + "'");
}

namespace {

/// Length of the union of [start, end) intervals.
double union_length(std::vector<std::pair<double, double>> intervals) {
  if (intervals.empty()) return 0.0;
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0;
  double cur_start = intervals[0].first;
  double cur_end = intervals[0].second;
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].first > cur_end) {
      total += cur_end - cur_start;
      cur_start = intervals[i].first;
      cur_end = intervals[i].second;
    } else {
      cur_end = std::max(cur_end, intervals[i].second);
    }
  }
  return total + (cur_end - cur_start);
}

}  // namespace

TimeBreakdown breakdown_by_phase(const WorkflowTrace& trace, bool wall_clock) {
  TimeBreakdown out;
  out.scenario = trace.name();
  for (Phase p : {Phase::kOverhead, Phase::kExternalIn, Phase::kFsRead,
                  Phase::kWork, Phase::kFsWrite}) {
    double seconds = 0.0;
    if (wall_clock) {
      std::vector<std::pair<double, double>> intervals;
      for (const TaskRecord& r : trace.records())
        for (const Span& s : r.spans)
          if (s.phase == p && s.duration() > 0.0)
            intervals.emplace_back(s.start_seconds, s.end_seconds);
      seconds = union_length(std::move(intervals));
    } else {
      seconds = trace.total_time_in_phase(p);
    }
    if (seconds > 0.0)
      out.components.push_back(BreakdownComponent{phase_name(p), seconds});
  }
  return out;
}

double IoChannelReport::achieved_bandwidth() const {
  return busy_seconds > 0.0 ? bytes / busy_seconds : 0.0;
}

const IoChannelReport& IoReport::channel(const std::string& name) const {
  for (const IoChannelReport& c : channels)
    if (c.channel == name) return c;
  throw util::NotFound("no I/O channel '" + name + "'");
}

IoReport io_report(const WorkflowTrace& trace) {
  IoReport report;
  struct ChannelSpec {
    const char* name;
    Phase phase;
    double ChannelCounters::* volume;
  };
  const ChannelSpec specs[] = {
      {"external_in", Phase::kExternalIn, &ChannelCounters::external_in_bytes},
      {"fs_read", Phase::kFsRead, &ChannelCounters::fs_read_bytes},
      {"fs_write", Phase::kFsWrite, &ChannelCounters::fs_write_bytes},
  };
  for (const ChannelSpec& spec : specs) {
    IoChannelReport c;
    c.channel = spec.name;
    std::vector<std::pair<double, double>> intervals;
    for (const TaskRecord& r : trace.records()) {
      const double volume = r.counters.*spec.volume;
      if (volume > 0.0) {
        c.bytes += volume;
        ++c.task_count;
      }
      for (const Span& s : r.spans)
        if (s.phase == spec.phase && s.duration() > 0.0)
          intervals.emplace_back(s.start_seconds, s.end_seconds);
    }
    c.busy_seconds = union_length(std::move(intervals));
    report.channels.push_back(std::move(c));
  }
  return report;
}

std::string describe_trace(const WorkflowTrace& trace) {
  std::string out = util::format("workflow '%s': %zu tasks, makespan %s\n",
                                 trace.name().c_str(),
                                 trace.records().size(),
                                 util::format_seconds(trace.makespan_seconds()).c_str());
  for (const TaskRecord& r : trace.records()) {
    out += util::format("  %-20s nodes=%-5d [%s, %s] %s\n", r.name.c_str(),
                        r.nodes,
                        util::format_seconds(r.start_seconds).c_str(),
                        util::format_seconds(r.end_seconds).c_str(),
                        describe(r.counters).c_str());
  }
  return out;
}

}  // namespace wfr::trace

#include "trace/timeline.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::trace {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kOverhead: return "overhead";
    case Phase::kExternalIn: return "external_in";
    case Phase::kFsRead: return "fs_read";
    case Phase::kWork: return "work";
    case Phase::kFsWrite: return "fs_write";
  }
  return "?";
}

Phase parse_phase(const std::string& name) {
  for (Phase p : {Phase::kOverhead, Phase::kExternalIn, Phase::kFsRead,
                  Phase::kWork, Phase::kFsWrite}) {
    if (name == phase_name(p)) return p;
  }
  throw util::ParseError("unknown phase name '" + name + "'");
}

double TaskRecord::time_in_phase(Phase phase) const {
  double total = 0.0;
  for (const Span& s : spans)
    if (s.phase == phase) total += s.duration();
  return total;
}

void WorkflowTrace::add_record(TaskRecord record) {
  util::require(record.end_seconds >= record.start_seconds,
                "task record must not end before it starts");
  for (const Span& s : record.spans)
    util::require(s.end_seconds >= s.start_seconds,
                  "span must not end before it starts");
  records_.push_back(std::move(record));
}

const TaskRecord& WorkflowTrace::record(const std::string& name) const {
  for (const TaskRecord& r : records_)
    if (r.name == name) return r;
  throw util::NotFound("no task record named '" + name + "'");
}

double WorkflowTrace::makespan_seconds() const {
  if (records_.empty()) return 0.0;
  double first = records_.front().start_seconds;
  double last = records_.front().end_seconds;
  for (const TaskRecord& r : records_) {
    first = std::min(first, r.start_seconds);
    last = std::max(last, r.end_seconds);
  }
  return last - first;
}

ChannelCounters WorkflowTrace::total_counters() const {
  ChannelCounters total;
  for (const TaskRecord& r : records_) total += r.counters;
  return total;
}

double WorkflowTrace::total_time_in_phase(Phase phase) const {
  double total = 0.0;
  for (const TaskRecord& r : records_) total += r.time_in_phase(phase);
  return total;
}

int WorkflowTrace::peak_concurrency() const {
  // Sweep over start/end events.
  std::vector<std::pair<double, int>> events;
  events.reserve(records_.size() * 2);
  for (const TaskRecord& r : records_) {
    if (r.duration() <= 0.0) continue;
    events.emplace_back(r.start_seconds, +1);
    events.emplace_back(r.end_seconds, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // ends before starts at ties
            });
  int depth = 0, peak = 0;
  for (const auto& [t, d] : events) {
    depth += d;
    peak = std::max(peak, depth);
  }
  return peak;
}

util::Json WorkflowTrace::to_json() const {
  util::JsonObject root;
  root.set("name", util::Json(name_));
  util::JsonArray tasks;
  for (const TaskRecord& r : records_) {
    util::JsonObject t;
    t.set("task", util::Json(static_cast<std::int64_t>(r.task)));
    t.set("name", util::Json(r.name));
    if (!r.kind.empty()) t.set("kind", util::Json(r.kind));
    t.set("nodes", util::Json(r.nodes));
    t.set("start", util::Json(r.start_seconds));
    t.set("end", util::Json(r.end_seconds));
    if (r.attempts != 1) t.set("attempts", util::Json(r.attempts));
    util::JsonArray spans;
    for (const Span& s : r.spans) {
      util::JsonObject sp;
      sp.set("phase", util::Json(phase_name(s.phase)));
      sp.set("start", util::Json(s.start_seconds));
      sp.set("end", util::Json(s.end_seconds));
      spans.emplace_back(std::move(sp));
    }
    t.set("spans", util::Json(std::move(spans)));
    util::JsonObject c;
    const ChannelCounters& cc = r.counters;
    auto set_nonzero = [&c](const char* key, double v) {
      if (v != 0.0) c.set(key, util::Json(v));
    };
    set_nonzero("external_in", cc.external_in_bytes);
    set_nonzero("fs_read", cc.fs_read_bytes);
    set_nonzero("fs_write", cc.fs_write_bytes);
    set_nonzero("network", cc.network_bytes);
    set_nonzero("flops", cc.flops);
    set_nonzero("dram", cc.dram_bytes);
    set_nonzero("hbm", cc.hbm_bytes);
    set_nonzero("pcie", cc.pcie_bytes);
    t.set("counters", util::Json(std::move(c)));
    tasks.emplace_back(std::move(t));
  }
  root.set("tasks", util::Json(std::move(tasks)));
  return util::Json(std::move(root));
}

WorkflowTrace WorkflowTrace::from_json(const util::Json& json) {
  WorkflowTrace trace(json.string_or("name", ""));
  for (const util::Json& t : json.at("tasks").as_array()) {
    TaskRecord r;
    r.task = static_cast<dag::TaskId>(t.at("task").as_int());
    r.name = t.at("name").as_string();
    r.kind = t.string_or("kind", "");
    r.nodes = static_cast<int>(t.at("nodes").as_int());
    r.start_seconds = t.at("start").as_number();
    r.end_seconds = t.at("end").as_number();
    r.attempts = static_cast<int>(t.number_or("attempts", 1.0));
    for (const util::Json& sp : t.at("spans").as_array()) {
      Span s;
      s.phase = parse_phase(sp.at("phase").as_string());
      s.start_seconds = sp.at("start").as_number();
      s.end_seconds = sp.at("end").as_number();
      r.spans.push_back(s);
    }
    const util::Json& c = t.at("counters");
    r.counters.external_in_bytes = c.number_or("external_in", 0.0);
    r.counters.fs_read_bytes = c.number_or("fs_read", 0.0);
    r.counters.fs_write_bytes = c.number_or("fs_write", 0.0);
    r.counters.network_bytes = c.number_or("network", 0.0);
    r.counters.flops = c.number_or("flops", 0.0);
    r.counters.dram_bytes = c.number_or("dram", 0.0);
    r.counters.hbm_bytes = c.number_or("hbm", 0.0);
    r.counters.pcie_bytes = c.number_or("pcie", 0.0);
    trace.add_record(std::move(r));
  }
  return trace;
}

}  // namespace wfr::trace

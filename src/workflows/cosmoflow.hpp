#pragma once
// CosmoFlow case study (paper Fig. 8): a hyperparameter-tuning-style
// throughput benchmark on PM-GPU, ultimately HBM-bound, with a
// 12-instance parallelism wall and throughput linear in the instance
// count.

#include <vector>

#include "analytical/cosmoflow_model.hpp"
#include "core/model.hpp"
#include "trace/timeline.hpp"

namespace wfr::workflows {

/// One point of the instance sweep.
struct CosmoPoint {
  int instances = 0;
  double makespan_seconds = 0.0;
  double epochs_per_second = 0.0;
};

struct CosmoStudyResult {
  analytical::CosmoFlowParams params;
  std::vector<CosmoPoint> sweep;     // 1 .. max instances
  core::RooflineModel model;         // ceilings at the wall + sweep dots
  double hbm_epoch_seconds = 0.0;    // 4.2 s on PM-GPU
  double pcie_epoch_seconds = 0.0;   // 0.8 s on PM-GPU
  int max_instances = 0;             // 12 on PM-GPU
};

/// Sweeps 1..max instances on PM-GPU (the large-memory nodes excluded)
/// and assembles the Fig. 8 model.
CosmoStudyResult run_cosmoflow(
    const analytical::CosmoFlowParams& params = {});

/// Runs one instance count through the simulator; exposed for tests.
CosmoPoint run_cosmoflow_point(const analytical::CosmoFlowParams& params,
                               int instances);

}  // namespace wfr::workflows

#include "workflows/gptune_wf.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace wfr::workflows {

GptuneStudyResult run_gptune(std::uint64_t seed,
                             const analytical::GptuneParams& params) {
  params.validate();

  auto run_mode = [&](autotune::ControlFlowMode mode) {
    autotune::SuperluSurface surface(params.matrix_dim);
    autotune::CampaignConfig cfg;
    cfg.mode = mode;
    cfg.tuner.total_samples = params.samples;
    cfg.tuner.seed = seed;
    return autotune::run_campaign(surface, cfg);
  };

  GptuneStudyResult result;
  result.rci = run_mode(autotune::ControlFlowMode::kRci);
  result.spawn = run_mode(autotune::ControlFlowMode::kSpawn);
  result.projected = run_mode(autotune::ControlFlowMode::kProjected);

  result.spawn_over_rci =
      result.rci.total_seconds / result.spawn.total_seconds;
  result.projected_over_spawn =
      result.spawn.total_seconds / result.projected.total_seconds;

  // Fig. 10a: the RCI characterization carries the measured dot; the
  // irreducible (python-free) campaign time forms the control-flow
  // diagonal the projected dot rides.
  const core::SystemSpec system = core::SystemSpec::perlmutter_cpu();
  core::WorkflowCharacterization c = analytical::gptune_characterization(
      params, result.rci, result.projected.total_seconds);
  result.model = core::build_model(system, c);
  result.model.set_dot_label(0, "RCI");

  // Second filesystem ceiling: the Spawn metadata volume (40 MB vs 45 MB;
  // the two horizontals nearly coincide — the paper's pattern-over-volume
  // insight).
  const double spawn_fs_per_task =
      result.spawn.fs_bytes / static_cast<double>(params.samples);
  result.model.add_ceiling(core::Ceiling::horizontal(
      core::Channel::kFilesystem,
      util::format("File System (Spawn) %s @ %s",
                   util::format_bytes(result.spawn.fs_bytes).c_str(),
                   util::format_rate(system.fs_gbs).c_str()),
      system.fs_gbs / spawn_fs_per_task));

  core::Dot spawn_dot;
  spawn_dot.label = "Spawn";
  spawn_dot.parallel_tasks = 1;
  spawn_dot.tps = result.spawn.samples_per_second();
  result.model.add_dot(std::move(spawn_dot));

  core::Dot projected_dot;
  projected_dot.label = "projected (no python)";
  projected_dot.parallel_tasks = 1;
  projected_dot.tps = result.projected.samples_per_second();
  projected_dot.style = "projected";
  result.model.add_dot(std::move(projected_dot));

  result.breakdowns = {result.rci.breakdown, result.spawn.breakdown,
                       result.projected.breakdown};
  return result;
}

}  // namespace wfr::workflows

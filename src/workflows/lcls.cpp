#include "workflows/lcls.hpp"

#include <algorithm>

#include "sim/runner.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace wfr::workflows {

LclsScenario lcls_cori_good_day() {
  LclsScenario s;
  s.label = "good day";
  s.system = core::SystemSpec::cori_haswell();
  s.system.external_gbs = 5.0 * util::kGBs;  // 5 streams x 1 GB/s
  s.cores_per_node = 32;
  s.target_2024 = false;
  return s;
}

LclsScenario lcls_cori_bad_day() {
  LclsScenario s = lcls_cori_good_day();
  s.label = "bad day";
  s.system.external_gbs = 1.0 * util::kGBs;  // 5x contention drop
  return s;
}

LclsScenario lcls_pm_dtn() {
  LclsScenario s;
  s.label = "dtn";
  s.system = core::SystemSpec::perlmutter_cpu();
  s.system.external_gbs = 25.0 * util::kGBs;  // one DTN node
  s.cores_per_node = 128;
  s.target_2024 = true;
  return s;
}

LclsScenario lcls_pm_dtn_contended() {
  LclsScenario s = lcls_pm_dtn();
  s.label = "dtn contended";
  s.system.external_gbs = 5.0 * util::kGBs;  // observed 5x drop
  return s;
}

LclsStudyResult run_lcls(const LclsScenario& scenario,
                         const analytical::LclsParams& params) {
  params.validate();
  scenario.system.validate();

  const int nodes_per_task =
      analytical::lcls_nodes_per_task(params, scenario.cores_per_node);

  LclsStudyResult result{
      scenario,
      analytical::lcls_graph(params, nodes_per_task),
      {},
      analytical::lcls_characterization(params, nodes_per_task,
                                        scenario.target_2024),
      core::RooflineModel(scenario.system, {}),
      {}};

  // Execute on the simulator: the five analysis tasks contend for the
  // external link, reproducing the per-stream bandwidth split.
  result.trace =
      sim::run_workflow(result.graph, scenario.system.to_machine());

  result.characterization.makespan_seconds = result.trace.makespan_seconds();
  result.model = core::build_model(scenario.system, result.characterization);
  // build_model labels the auto-added dot "measured"; use the scenario
  // label so multi-scenario figures stay readable.
  result.model.set_dot_label(0, scenario.label);

  // Fig. 5b split: wall-clock time with any external transfer in flight
  // is "Loading data"; the rest of the makespan is "Analysis".
  const trace::TimeBreakdown phases =
      trace::breakdown_by_phase(result.trace, /*wall_clock=*/true);
  double loading = 0.0;
  for (const trace::BreakdownComponent& c : phases.components)
    if (c.label == trace::phase_name(trace::Phase::kExternalIn))
      loading = c.seconds;
  result.breakdown.scenario = scenario.label;
  result.breakdown.component("Loading data").seconds = loading;
  result.breakdown.component("Analysis").seconds =
      std::max(result.trace.makespan_seconds() - loading, 0.0);
  return result;
}

}  // namespace wfr::workflows

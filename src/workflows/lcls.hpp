#pragma once
// LCLS case study (paper Figs. 4-6): time-sensitive XFEL analysis, bound
// by the system external bandwidth.  Scenarios reproduce the paper's
// "good day" / "bad day" contention split on Cori-HSW and the DTN-based
// ingest on PM-CPU.

#include <string>

#include "analytical/lcls_model.hpp"
#include "core/model.hpp"
#include "dag/graph.hpp"
#include "trace/summary.hpp"
#include "trace/timeline.hpp"

namespace wfr::workflows {

/// One LCLS execution scenario: a system plus the aggregate external
/// bandwidth observed that day.
struct LclsScenario {
  std::string label;
  core::SystemSpec system;  // external_gbs holds the scenario bandwidth
  int cores_per_node = 32;
  bool target_2024 = false;
};

/// Cori-HSW, good day: each of the five streams sustains ~1 GB/s
/// (5 GB/s aggregate).  End-to-end lands at the paper's ~17 minutes.
LclsScenario lcls_cori_good_day();
/// Cori-HSW, bad day: 5x contention drop (1 GB/s aggregate, ~85 minutes).
LclsScenario lcls_cori_bad_day();
/// PM-CPU via a data transfer node at 25 GB/s (Fig. 6), 2024 target.
LclsScenario lcls_pm_dtn();
/// PM-CPU with the observed 5x contention drop to 5 GB/s.
LclsScenario lcls_pm_dtn_contended();

/// Everything the figures need from one scenario run.
struct LclsStudyResult {
  LclsScenario scenario;
  dag::WorkflowGraph graph;
  trace::WorkflowTrace trace;
  core::WorkflowCharacterization characterization;  // measured makespan set
  core::RooflineModel model;
  /// Fig. 5b wall-clock split: "Loading data" vs "Analysis".
  trace::TimeBreakdown breakdown;
};

/// Runs the scenario through the simulator and assembles the model.
LclsStudyResult run_lcls(const LclsScenario& scenario,
                         const analytical::LclsParams& params = {});

}  // namespace wfr::workflows

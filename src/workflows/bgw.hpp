#pragma once
// BerkeleyGW case study (paper Fig. 7): a traditional HPC chain bound by
// node-local performance.  Run at 64 nodes/task (batch mode, high
// throughput) or 1024 nodes/task (urgent single result).

#include "analytical/bgw_model.hpp"
#include "core/model.hpp"
#include "core/taskview.hpp"
#include "dag/graph.hpp"
#include "dag/schedule.hpp"
#include "trace/timeline.hpp"

namespace wfr::workflows {

struct BgwStudyResult {
  int nodes_per_task = 0;
  dag::WorkflowGraph graph;
  trace::WorkflowTrace trace;
  core::WorkflowCharacterization characterization;
  core::RooflineModel model;
  core::TaskView task_view;          // Fig. 7c entries for this scale
  dag::CriticalPath critical_path;   // Fig. 7d overlay
};

/// Runs BGW at `nodes` per task (64 or 1024) on Perlmutter-GPU.
BgwStudyResult run_bgw(int nodes, const analytical::BgwParams& params = {});

/// The combined Fig. 7c task view: Epsilon/Sigma at both scales.
core::TaskView bgw_combined_task_view(const analytical::BgwParams& params = {});

}  // namespace wfr::workflows

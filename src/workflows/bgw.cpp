#include "workflows/bgw.hpp"

#include <vector>

#include "sim/runner.hpp"
#include "util/error.hpp"

namespace wfr::workflows {

BgwStudyResult run_bgw(int nodes, const analytical::BgwParams& params) {
  const core::SystemSpec system = core::SystemSpec::perlmutter_gpu();

  BgwStudyResult result{
      nodes,
      analytical::bgw_graph(params, nodes),
      {},
      analytical::bgw_characterization(params, nodes),
      core::RooflineModel(system, {}),
      {},
      {}};

  result.trace = sim::run_workflow(result.graph, system.to_machine());

  // The simulated makespan must land on the paper's measured total (the
  // fixed task durations are the measured values; I/O is tiny).
  result.characterization.makespan_seconds = result.trace.makespan_seconds();
  result.model = core::build_model(system, result.characterization);

  result.task_view =
      core::task_view_from_trace(result.graph, result.trace, system);

  std::vector<double> durations(result.graph.task_count(), 0.0);
  for (const trace::TaskRecord& r : result.trace.records())
    durations[r.task] = r.duration();
  result.critical_path = result.graph.critical_path(durations);
  return result;
}

core::TaskView bgw_combined_task_view(const analytical::BgwParams& params) {
  core::TaskView combined;
  for (int nodes : {analytical::kBgwSmallNodes, analytical::kBgwLargeNodes}) {
    const BgwStudyResult r = run_bgw(nodes, params);
    for (const core::TaskViewEntry& e : r.task_view.entries())
      combined.add(e);
  }
  return combined;
}

}  // namespace wfr::workflows

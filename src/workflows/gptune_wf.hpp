#pragma once
// GPTune case study (paper Figs. 9-10): an auto-tuner bound by its data
// control flow.  The same Bayesian-optimization campaign (a real GP + EI
// loop over the synthetic SuperLU_DIST surface) runs under the RCI and
// Spawn control flows; the projected variant removes the python overhead.

#include <vector>

#include "analytical/gptune_model.hpp"
#include "autotune/control_flow.hpp"
#include "core/model.hpp"
#include "trace/summary.hpp"

namespace wfr::workflows {

struct GptuneStudyResult {
  autotune::CampaignResult rci;
  autotune::CampaignResult spawn;
  autotune::CampaignResult projected;
  /// The Fig. 10a model: ceilings from the RCI characterization plus the
  /// Spawn filesystem ceiling, with RCI/Spawn measured dots and the
  /// projected open dot.
  core::RooflineModel model;
  /// The Fig. 10b bars, in RCI / Spawn / Projected order.
  std::vector<trace::TimeBreakdown> breakdowns;
  /// Speedup ratios the paper calls out.
  double spawn_over_rci = 0.0;       // ~2.4x
  double projected_over_spawn = 0.0; // ~12x
};

/// Runs all three campaign variants with the given seed.
GptuneStudyResult run_gptune(std::uint64_t seed = 1,
                             const analytical::GptuneParams& params = {});

}  // namespace wfr::workflows

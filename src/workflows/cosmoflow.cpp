#include "workflows/cosmoflow.hpp"

#include "sim/runner.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::workflows {

namespace {
core::SystemSpec cosmoflow_system(const analytical::CosmoFlowParams& params) {
  core::SystemSpec system = core::SystemSpec::perlmutter_gpu();
  // The throughput benchmark cannot use the 256 large-memory nodes; the
  // parallelism wall is 1536 / 128 = 12 instances.
  system.total_nodes = params.usable_nodes;
  return system;
}
}  // namespace

CosmoPoint run_cosmoflow_point(const analytical::CosmoFlowParams& params,
                               int instances) {
  const core::SystemSpec system = cosmoflow_system(params);
  const dag::WorkflowGraph graph =
      analytical::cosmoflow_graph(params, instances);
  const trace::WorkflowTrace trace =
      sim::run_workflow(graph, system.to_machine());
  CosmoPoint point;
  point.instances = instances;
  point.makespan_seconds = trace.makespan_seconds();
  point.epochs_per_second =
      static_cast<double>(instances * params.epochs_per_instance) /
      point.makespan_seconds;
  return point;
}

CosmoStudyResult run_cosmoflow(const analytical::CosmoFlowParams& params) {
  params.validate();
  const core::SystemSpec system = cosmoflow_system(params);
  const int max_instances = analytical::cosmoflow_max_instances(params);

  CosmoStudyResult result{params,
                          {},
                          core::RooflineModel(system, {}),
                          analytical::cosmoflow_hbm_epoch_seconds(
                              params, system.node.hbm_gbs),
                          analytical::cosmoflow_pcie_epoch_seconds(
                              params, system.node.pcie_gbs),
                          max_instances};

  for (int i = 1; i <= max_instances; ++i)
    result.sweep.push_back(run_cosmoflow_point(params, i));

  core::WorkflowCharacterization c =
      analytical::cosmoflow_characterization(params, max_instances);
  c.makespan_seconds = result.sweep.back().makespan_seconds;
  result.model = core::build_model(system, c);
  result.model.set_dot_label(0, util::format("%d instances", max_instances));
  for (const CosmoPoint& p : result.sweep) {
    if (p.instances == max_instances) continue;  // already the measured dot
    core::Dot d;
    d.label = util::format("%d", p.instances);
    d.parallel_tasks = p.instances;
    d.tps = p.epochs_per_second;
    result.model.add_dot(std::move(d));
  }
  return result;
}

}  // namespace wfr::workflows

#pragma once
// WfCommons / WfBench workflow-instance importer: maps published workflow
// JSON (https://wfcommons.org — Montage, Epigenomics, Seismology, ... and
// WfBench-generated instances) onto our DAG so real instances can be
// characterized, simulated, swept, checked, and served.
//
// Two on-disk layouts are supported:
//   * the split specification/execution layout (wfformat >= 1.4):
//     workflow.specification.tasks[] (id/parents/inputFiles/outputFiles)
//     + specification.files[] (id/sizeInBytes) + optional
//     workflow.execution.tasks[] (runtimeInSeconds/coreCount) and
//     execution.machines[] (cpu.speedInMHz);
//   * the legacy inline layout (wfformat <= 1.3): workflow.tasks[] with
//     per-task files[] ({name, size, link: input|output}), runtime, cores,
//     and workflow.machines[].
//
// Mapping onto dag::TaskSpec:
//   * input file bytes  -> demand.fs_read_bytes
//   * output file bytes -> demand.fs_write_bytes
//   * measured runtime  -> fixed_duration_seconds (the simulator honors
//     the recorded duration) and, with the machine's per-core clock
//     (1 flop/cycle nominal; 1 GF/s/core when no machine is recorded),
//     runtime x cores x rate -> demand.flops_per_node so the analytical
//     model sees a compute diagonal too;
//   * parents (and children, when present) -> dependencies.
//
// Hardening (fuzzed by tests/fuzz `import`): rejects documents without a
// workflow object, duplicate task ids, references to unknown parents or
// files, cyclic dependencies, and out-of-range volumes (file sizes above
// 1e18 bytes, runtimes outside [0, 1e9] s, core counts outside [1, 1e6]).

#include <string>
#include <string_view>

#include "dag/graph.hpp"
#include "util/json.hpp"

namespace wfr::workflows {

/// Sanity caps on imported volumes; anything beyond these is a corrupt or
/// hostile instance, not a real workflow.
inline constexpr double kMaxImportFileBytes = 1e18;
inline constexpr double kMaxImportRuntimeSeconds = 1e9;
inline constexpr double kMaxImportCores = 1e6;

/// An imported instance: the DAG plus provenance the caller may report.
struct WfInstance {
  dag::WorkflowGraph graph;
  /// The document's schemaVersion member ("" when absent).
  std::string schema_version;
  /// True when the legacy (<= 1.3) inline-files layout was parsed.
  bool legacy = false;
  /// Distinct files referenced by the instance.
  std::size_t file_count = 0;
  /// Recorded execution makespan, seconds; -1 when absent.
  double makespan_seconds = -1.0;
};

/// True when `doc` is shaped like a WfCommons instance (an object with an
/// object `workflow` member) — used to accept inline instances over HTTP.
bool looks_like_wfcommons(const util::Json& doc);

/// Imports a parsed WfCommons document.  Throws util::ParseError on
/// malformed instances and util::InvalidArgument on cyclic dependencies.
WfInstance import_wfcommons_json(const util::Json& doc);

/// Parses and imports WfCommons JSON text.
WfInstance import_wfcommons(std::string_view text);

}  // namespace wfr::workflows

#include "workflows/wfcommons.hpp"

#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::workflows {

namespace {

// Per-core flop rate assumed when the instance records no machine: most
// published traces ran on ~GHz cores, and the exact constant only scales
// the synthesized compute diagonal, not the io volumes.
constexpr double kDefaultFlopsPerCoreSecond = 1e9;

double checked_file_bytes(double bytes, const std::string& file) {
  if (!(bytes >= 0.0) || !(bytes <= kMaxImportFileBytes))
    throw util::ParseError(util::format(
        "file '%s': size %g bytes out of range [0, %g]", file.c_str(), bytes,
        kMaxImportFileBytes));
  return bytes;
}

double checked_runtime(double seconds, const std::string& task) {
  if (!(seconds >= 0.0) || !(seconds <= kMaxImportRuntimeSeconds))
    throw util::ParseError(util::format(
        "task '%s': runtime %g s out of range [0, %g]", task.c_str(), seconds,
        kMaxImportRuntimeSeconds));
  return seconds;
}

double checked_cores(double cores, const std::string& task) {
  if (!(cores >= 1.0) || !(cores <= kMaxImportCores))
    throw util::ParseError(util::format(
        "task '%s': core count %g out of range [1, %g]", task.c_str(), cores,
        kMaxImportCores));
  return cores;
}

// First recorded machine's per-core flop rate (speedInMHz / speed, MHz).
double machine_flops_per_core(const util::Json* machines) {
  if (machines == nullptr || !machines->is_array()) {
    return kDefaultFlopsPerCoreSecond;
  }
  for (const util::Json& m : machines->as_array()) {
    if (!m.is_object()) continue;
    const util::Json* cpu = m.as_object().find("cpu");
    if (cpu == nullptr || !cpu->is_object()) continue;
    double mhz = cpu->number_or("speedInMHz", 0.0);
    if (mhz <= 0.0) mhz = cpu->number_or("speed", 0.0);
    if (mhz > 0.0 && mhz <= 1e6) return mhz * 1e6;
  }
  return kDefaultFlopsPerCoreSecond;
}

struct TaskDraft {
  dag::TaskSpec spec;
  std::vector<std::string> parents;
  std::vector<std::string> children;
};

void check_duplicate(std::unordered_set<std::string>& seen,
                     const std::string& id) {
  if (!seen.insert(id).second)
    throw util::ParseError("duplicate task id '" + id + "'");
}

// Applies a measured runtime: the simulator honors the recorded duration,
// and the model gets a synthesized compute volume so the instance has a
// compute diagonal in addition to its io volumes.
void apply_runtime(dag::TaskSpec& spec, double runtime, double cores,
                   double flops_per_core) {
  spec.fixed_duration_seconds = runtime;
  spec.demand.flops_per_node = runtime * cores * flops_per_core;
}

// wfformat >= 1.4: workflow.specification + optional workflow.execution.
WfInstance import_specification(const util::Json& doc, const util::Json& wf,
                                const util::Json& spec_section) {
  WfInstance out;
  out.graph = dag::WorkflowGraph(doc.string_or("name", "wfcommons"));
  out.schema_version = doc.string_or("schemaVersion", "");

  // File table: id -> size.
  std::unordered_map<std::string, double> file_bytes;
  if (const util::Json* files = spec_section.as_object().find("files")) {
    for (const util::Json& f : files->as_array()) {
      const std::string id = f.at("id").as_string();
      file_bytes[id] =
          checked_file_bytes(f.at("sizeInBytes").as_number(), id);
    }
  }
  out.file_count = file_bytes.size();

  // Execution table: task id -> (runtime, cores), plus the machine clock.
  std::unordered_map<std::string, std::pair<double, double>> execution;
  double flops_per_core = kDefaultFlopsPerCoreSecond;
  if (const util::Json* exec_section = wf.as_object().find("execution")) {
    flops_per_core =
        machine_flops_per_core(exec_section->as_object().find("machines"));
    out.makespan_seconds =
        exec_section->number_or("makespanInSeconds", -1.0);
    if (const util::Json* tasks = exec_section->as_object().find("tasks")) {
      for (const util::Json& t : tasks->as_array()) {
        const std::string id = t.at("id").as_string();
        const double runtime =
            checked_runtime(t.number_or("runtimeInSeconds", 0.0), id);
        const double cores = checked_cores(t.number_or("coreCount", 1.0), id);
        execution[id] = {runtime, cores};
      }
    }
  }

  const util::Json& tasks = spec_section.at("tasks");
  if (tasks.as_array().empty())
    throw util::ParseError("workflow has no tasks");

  std::unordered_set<std::string> seen;
  std::vector<TaskDraft> drafts;
  for (const util::Json& t : tasks.as_array()) {
    TaskDraft draft;
    const std::string name = t.string_or("name", "");
    std::string id = t.string_or("id", "");
    if (id.empty()) id = name;
    if (id.empty()) throw util::ParseError("task without id or name");
    check_duplicate(seen, id);
    draft.spec.name = id;
    draft.spec.kind = name.empty() || name == id ? t.string_or("category", "")
                                                 : name;
    auto sum_files = [&](const char* key, double* bytes) {
      const util::Json* refs = t.as_object().find(key);
      if (refs == nullptr) return;
      for (const util::Json& ref : refs->as_array()) {
        const std::string& file = ref.as_string();
        const auto it = file_bytes.find(file);
        if (it == file_bytes.end())
          throw util::ParseError(util::format(
              "task '%s' references unknown file '%s'", id.c_str(),
              file.c_str()));
        *bytes += it->second;
      }
    };
    sum_files("inputFiles", &draft.spec.demand.fs_read_bytes);
    sum_files("outputFiles", &draft.spec.demand.fs_write_bytes);
    if (const auto it = execution.find(id); it != execution.end())
      apply_runtime(draft.spec, it->second.first, it->second.second,
                    flops_per_core);
    auto read_refs = [&t](const char* key, std::vector<std::string>* into) {
      if (const util::Json* refs = t.as_object().find(key))
        for (const util::Json& ref : refs->as_array())
          into->push_back(ref.as_string());
    };
    read_refs("parents", &draft.parents);
    read_refs("children", &draft.children);
    drafts.push_back(std::move(draft));
  }

  for (TaskDraft& draft : drafts) out.graph.add_task(std::move(draft.spec));
  for (const TaskDraft& draft : drafts) {
    // spec was moved; recover this draft's id from position.
    const dag::TaskId id = static_cast<dag::TaskId>(&draft - drafts.data());
    for (const std::string& parent : draft.parents) {
      const dag::TaskId from = out.graph.find_task_or_invalid(parent);
      if (from == dag::kInvalidTask)
        throw util::ParseError(util::format(
            "task '%s' references unknown parent '%s'",
            out.graph.task(id).name.c_str(), parent.c_str()));
      out.graph.add_dependency(from, id);
    }
    for (const std::string& child : draft.children) {
      const dag::TaskId to = out.graph.find_task_or_invalid(child);
      if (to == dag::kInvalidTask)
        throw util::ParseError(util::format(
            "task '%s' references unknown child '%s'",
            out.graph.task(id).name.c_str(), child.c_str()));
      out.graph.add_dependency(id, to);
    }
  }
  out.graph.validate();
  return out;
}

// wfformat <= 1.3: workflow.tasks[] with inline files[].
WfInstance import_legacy(const util::Json& doc, const util::Json& wf,
                         const util::Json& tasks) {
  WfInstance out;
  out.legacy = true;
  out.graph = dag::WorkflowGraph(doc.string_or("name", "wfcommons"));
  out.schema_version = doc.string_or("schemaVersion", "");
  out.makespan_seconds = wf.number_or("makespanInSeconds", -1.0);
  const double flops_per_core =
      machine_flops_per_core(wf.as_object().find("machines"));

  if (tasks.as_array().empty())
    throw util::ParseError("workflow has no tasks");

  std::unordered_set<std::string> seen;
  std::unordered_set<std::string> files;
  std::vector<TaskDraft> drafts;
  for (const util::Json& t : tasks.as_array()) {
    TaskDraft draft;
    const std::string id = t.at("name").as_string();
    check_duplicate(seen, id);
    draft.spec.name = id;
    draft.spec.kind = t.string_or("category", t.string_or("type", ""));
    if (const util::Json* file_list = t.as_object().find("files")) {
      for (const util::Json& f : file_list->as_array()) {
        const std::string file = f.string_or("name", f.string_or("id", "?"));
        files.insert(file);
        double bytes = f.number_or("sizeInBytes", -1.0);
        if (bytes < 0.0) bytes = f.number_or("size", 0.0);
        bytes = checked_file_bytes(bytes, file);
        const std::string link = f.string_or("link", "input");
        if (link == "output") {
          draft.spec.demand.fs_write_bytes += bytes;
        } else {
          draft.spec.demand.fs_read_bytes += bytes;
        }
      }
    }
    double runtime = t.number_or("runtimeInSeconds", -1.0);
    if (runtime < 0.0) runtime = t.number_or("runtime", -1.0);
    if (runtime >= 0.0) {
      runtime = checked_runtime(runtime, id);
      double cores = t.number_or("cores", 0.0);
      if (cores <= 0.0) cores = t.number_or("coreCount", 1.0);
      apply_runtime(draft.spec, runtime, checked_cores(cores, id),
                    flops_per_core);
    }
    if (const util::Json* parents = t.as_object().find("parents"))
      for (const util::Json& p : parents->as_array())
        draft.parents.push_back(p.as_string());
    drafts.push_back(std::move(draft));
  }
  out.file_count = files.size();

  for (TaskDraft& draft : drafts) out.graph.add_task(std::move(draft.spec));
  for (const TaskDraft& draft : drafts) {
    const dag::TaskId id = static_cast<dag::TaskId>(&draft - drafts.data());
    for (const std::string& parent : draft.parents) {
      const dag::TaskId from = out.graph.find_task_or_invalid(parent);
      if (from == dag::kInvalidTask)
        throw util::ParseError(util::format(
            "task '%s' references unknown parent '%s'",
            out.graph.task(id).name.c_str(), parent.c_str()));
      out.graph.add_dependency(from, id);
    }
  }
  out.graph.validate();
  return out;
}

}  // namespace

bool looks_like_wfcommons(const util::Json& doc) {
  if (!doc.is_object()) return false;
  const util::Json* wf = doc.as_object().find("workflow");
  return wf != nullptr && wf->is_object();
}

WfInstance import_wfcommons_json(const util::Json& doc) {
  if (!looks_like_wfcommons(doc))
    throw util::ParseError(
        "not a WfCommons workflow document (missing 'workflow' object)");
  const util::Json& wf = doc.at("workflow");
  if (const util::Json* spec = wf.as_object().find("specification")) {
    if (spec->is_object() && spec->as_object().contains("tasks"))
      return import_specification(doc, wf, *spec);
  }
  if (const util::Json* tasks = wf.as_object().find("tasks")) {
    if (tasks->is_array()) return import_legacy(doc, wf, *tasks);
  }
  throw util::ParseError(
      "WfCommons document has neither workflow.specification.tasks nor "
      "workflow.tasks");
}

WfInstance import_wfcommons(std::string_view text) {
  return import_wfcommons_json(util::Json::parse(text));
}

}  // namespace wfr::workflows

#include "autotune/control_flow.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::autotune {

const char* control_flow_name(ControlFlowMode mode) {
  switch (mode) {
    case ControlFlowMode::kRci: return "RCI";
    case ControlFlowMode::kSpawn: return "Spawn";
    case ControlFlowMode::kProjected: return "Projected";
  }
  return "?";
}

// Calibration targets (paper Fig. 10): RCI 553 s, Spawn 228 s, projected
// ~12x above Spawn; I/O time 30 s (RCI) vs 0.02 s (Spawn) despite similar
// metadata volumes (45 MB vs 40 MB) — pattern over volume.

ControlFlowCosts rci_costs() {
  ControlFlowCosts c;
  c.bash_per_iter_seconds = 2.0;
  c.srun_launch_seconds = 1.9;          // per iteration
  c.python_startup_seconds = 3.6;       // interpreter + libraries, per iter
  c.model_search_per_iter_seconds = 5.2;
  c.io_op_latency_seconds = 0.375;      // small-file metadata round trip
  c.io_ops_per_iter = 2;                // load + store each iteration
  c.io_ops_once = 0;
  c.metadata_bytes_per_op = 45e6 / 80.0;  // 45 MB over 80 operations
  return c;
}

ControlFlowCosts spawn_costs() {
  ControlFlowCosts c;
  c.bash_per_iter_seconds = 0.0;
  c.srun_launch_seconds = 1.9;          // once
  c.python_startup_seconds = 8.0;       // once (full library load)
  c.model_search_per_iter_seconds = 5.2;
  c.io_op_latency_seconds = 0.02;
  c.io_ops_per_iter = 0;
  c.io_ops_once = 1;                    // initial metadata load only
  c.metadata_bytes_per_op = 40e6;
  return c;
}

ControlFlowCosts projected_costs() {
  ControlFlowCosts c = spawn_costs();
  // The paper's open dot: python overhead removed (native model/search).
  c.python_startup_seconds = 0.0;
  c.model_search_per_iter_seconds = 0.0;
  return c;
}

double CampaignResult::samples_per_second() const {
  util::require(total_seconds > 0.0, "campaign has no duration");
  return static_cast<double>(history.samples.size()) / total_seconds;
}

CampaignResult run_campaign(SuperluSurface& surface,
                            const CampaignConfig& config) {
  const ControlFlowCosts costs =
      config.use_custom_costs
          ? config.custom_costs
          : (config.mode == ControlFlowMode::kRci
                 ? rci_costs()
                 : (config.mode == ControlFlowMode::kSpawn
                        ? spawn_costs()
                        : projected_costs()));

  CampaignResult result;
  result.mode = config.mode;

  // The real optimization loop: GP + EI over the synthetic SuperLU surface.
  result.history = tune(
      [&surface](std::span<const double> x) { return surface.evaluate(x); },
      surface.dim(), config.tuner);

  const auto iters = static_cast<double>(result.history.samples.size());
  for (const Sample& s : result.history.samples)
    result.application_seconds += s.value;

  // Orchestration accounting, itemized as the paper's breakdown.
  const bool per_iter_control = config.mode == ControlFlowMode::kRci;
  const double bash = costs.bash_per_iter_seconds * iters;
  const double srun =
      costs.srun_launch_seconds * (per_iter_control ? iters : 1.0);
  const double python =
      costs.python_startup_seconds * (per_iter_control ? iters : 1.0);
  const double model = costs.model_search_per_iter_seconds * iters;

  result.fs_ops = costs.io_ops_once +
                  costs.io_ops_per_iter * static_cast<int>(iters);
  result.fs_bytes =
      costs.metadata_bytes_per_op * static_cast<double>(result.fs_ops);
  util::require(costs.fs_gbs > 0.0, "control-flow costs need fs_gbs > 0");
  result.io_seconds =
      costs.io_op_latency_seconds * static_cast<double>(result.fs_ops) +
      result.fs_bytes / costs.fs_gbs;

  result.breakdown.scenario = control_flow_name(config.mode);
  if (bash > 0.0) result.breakdown.component("bash").seconds = bash;
  if (srun > 0.0) result.breakdown.component("srun").seconds = srun;
  if (result.io_seconds > 0.0)
    result.breakdown.component("load data").seconds = result.io_seconds;
  if (python > 0.0) result.breakdown.component("python").seconds = python;
  if (model > 0.0)
    result.breakdown.component("model and search").seconds = model;
  result.breakdown.component("application").seconds =
      result.application_seconds;

  result.total_seconds = result.breakdown.total_seconds();
  return result;
}

}  // namespace wfr::autotune

#pragma once
// GPTune control flows (paper Fig. 9): the same Bayesian-optimization
// campaign executed under two orchestration styles, plus the projected
// variant the paper derives.
//
//   * RCI ("via bash"): every iteration launches a fresh srun, restarts
//     python (interpreter + library load), and round-trips the metadata
//     through the shared filesystem.  Many small I/O operations mean the
//     I/O cost is latency- not volume-dominated.
//   * Spawn ("via MPI_Comm_Spawn"): one srun for the whole campaign;
//     metadata stays in memory; a single metadata load at the start.
//   * Projected: Spawn with the python overhead removed (the paper's open
//     dot, ~12x above Spawn).
//
// The optimization loop runs for real (src/autotune/tuner.hpp); the time
// accounting is synthetic but itemized exactly as the paper's Fig. 10b
// breakdown (bash, load data, python, application, model and search).

#include <string>

#include "autotune/surface.hpp"
#include "autotune/tuner.hpp"
#include "trace/summary.hpp"

namespace wfr::autotune {

enum class ControlFlowMode { kRci, kSpawn, kProjected };

const char* control_flow_name(ControlFlowMode mode);

/// Cost model for one campaign's orchestration.
struct ControlFlowCosts {
  /// Bash orchestration per iteration (RCI only).
  double bash_per_iter_seconds = 0.0;
  /// srun job-launch latency (per iteration for RCI, once for Spawn).
  double srun_launch_seconds = 0.0;
  /// Python interpreter + library start-up (per iteration for RCI, once
  /// for Spawn).
  double python_startup_seconds = 0.0;
  /// GP model update + search per iteration.
  double model_search_per_iter_seconds = 0.0;
  /// Latency of one metadata filesystem operation (load or store).
  double io_op_latency_seconds = 0.0;
  /// Metadata filesystem operations per iteration (RCI: load + store).
  int io_ops_per_iter = 0;
  /// One-time metadata filesystem operations (Spawn: initial load).
  int io_ops_once = 0;
  /// Metadata volume per filesystem operation.
  double metadata_bytes_per_op = 0.0;
  /// Filesystem bandwidth for the volume term of I/O time.
  double fs_gbs = 4.8e12;
};

/// The paper-calibrated cost models.
ControlFlowCosts rci_costs();
ControlFlowCosts spawn_costs();
ControlFlowCosts projected_costs();

struct CampaignConfig {
  ControlFlowMode mode = ControlFlowMode::kRci;
  TunerConfig tuner;
  /// Override the mode's default costs (mode_costs() when unset).
  bool use_custom_costs = false;
  ControlFlowCosts custom_costs;
};

/// Result of one campaign.
struct CampaignResult {
  ControlFlowMode mode = ControlFlowMode::kRci;
  History history;                  // the real BO trace
  trace::TimeBreakdown breakdown;   // Fig. 10b components
  double total_seconds = 0.0;
  double application_seconds = 0.0; // sum of tuned-application runtimes
  double io_seconds = 0.0;
  double fs_bytes = 0.0;            // total metadata volume moved
  int fs_ops = 0;                   // number of metadata operations

  /// Throughput in samples/second.
  double samples_per_second() const;
};

/// Runs the campaign: executes the BO loop against `surface` and accounts
/// the orchestration costs of the chosen control flow.
CampaignResult run_campaign(SuperluSurface& surface,
                            const CampaignConfig& config);

}  // namespace wfr::autotune

#pragma once
// Synthetic SuperLU_DIST cost surface: the tuned application of the GPTune
// case study.  The paper tunes SuperLU_DIST on a 4960x4960 sparse matrix
// with per-run times well under a second; we model the runtime as a smooth
// multimodal function of three normalized parameters:
//   x0 — process-grid aspect (nprows / npcols balance),
//   x1 — supernode / block size,
//   x2 — look-ahead depth.
// The surface has one global optimum, a local basin to trap greedy search,
// and an optional multiplicative noise term — enough structure to make the
// Bayesian-optimization loop's behaviour realistic.

#include <cstdint>
#include <span>
#include <vector>

#include "math/rng.hpp"

namespace wfr::autotune {

class SuperluSurface {
 public:
  /// `matrix_dim` scales the overall runtime (the paper uses 4960).
  /// `noise_sigma` is the sigma of a lognormal noise factor (0 = exact).
  explicit SuperluSurface(int matrix_dim = 4960, double noise_sigma = 0.0,
                          std::uint64_t noise_seed = 0);

  std::size_t dim() const { return 3; }

  /// Runtime (seconds) at normalized parameters x in [0,1]^3.  Throws on
  /// out-of-range inputs.  Noise (if configured) makes repeated calls
  /// differ; the noiseless landscape is evaluate_exact().
  double evaluate(std::span<const double> x);

  /// The deterministic landscape (no noise).
  double evaluate_exact(std::span<const double> x) const;

  /// The known global optimum (for tests): argmin of evaluate_exact.
  std::vector<double> optimum() const;
  double optimum_value() const;

  /// The baseline runtime at default parameters (0.5, 0.5, 0.5).
  double default_value() const;

 private:
  int matrix_dim_;
  double noise_sigma_;
  math::Rng rng_;
  double base_seconds_;
};

}  // namespace wfr::autotune

#include "autotune/acquisition.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wfr::autotune {

namespace {
double standard_normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

double standard_normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}
}  // namespace

double expected_improvement(double mean, double variance, double best) {
  util::require(variance >= 0.0, "EI needs variance >= 0");
  const double improvement = best - mean;
  if (variance <= 1e-18) return std::max(improvement, 0.0);
  const double sigma = std::sqrt(variance);
  const double z = improvement / sigma;
  return improvement * standard_normal_cdf(z) + sigma * standard_normal_pdf(z);
}

std::vector<double> propose_next(const GaussianProcess& gp, std::size_t dim,
                                 double best_observed, math::Rng& rng,
                                 int candidate_count) {
  util::require(gp.is_fitted(), "propose_next needs a fitted GP");
  util::require(dim >= 1, "propose_next needs dim >= 1");
  util::require(candidate_count >= 1, "propose_next needs candidates");

  std::vector<double> best_candidate(dim, 0.5);
  double best_ei = -1.0;
  std::vector<double> candidate(dim);
  for (int i = 0; i < candidate_count; ++i) {
    for (double& c : candidate) c = rng.uniform();
    const GpPrediction pred = gp.predict(candidate);
    const double ei = expected_improvement(pred.mean, pred.variance,
                                           best_observed);
    if (ei > best_ei) {
      best_ei = ei;
      best_candidate = candidate;
    }
  }
  return best_candidate;
}

}  // namespace wfr::autotune

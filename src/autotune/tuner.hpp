#pragma once
// The Bayesian-optimization loop of the mini-GPTune: random warm-up
// samples, then GP + expected-improvement proposals, all serialized (the
// paper: "the application runs are serialized in GPTune due to the data
// dependencies").

#include <functional>
#include <vector>

#include "autotune/gp.hpp"
#include "math/rng.hpp"

namespace wfr::autotune {

/// One evaluated sample.
struct Sample {
  std::vector<double> params;  // normalized, in [0,1]^dim
  double value = 0.0;          // measured runtime (seconds)
};

/// The full tuning history.
struct History {
  std::vector<Sample> samples;

  bool empty() const { return samples.empty(); }
  /// Best (minimum) value observed so far; throws when empty.
  const Sample& best() const;
  /// best-so-far trajectory (one entry per sample).
  std::vector<double> best_trajectory() const;
};

struct TunerConfig {
  int total_samples = 40;  // the paper's GPTune campaign tunes 40 samples
  int warmup_samples = 8;  // random before the GP takes over
  int ei_candidates = 256;
  std::uint64_t seed = 0;
  GpParams gp;
  /// When true, the GP length scale is re-selected each refit from a
  /// small grid by marginal likelihood (type-II ML).  Off by default to
  /// keep the paper-calibrated campaigns byte-stable.
  bool adapt_length_scale = false;
  /// Worker threads for the warm-up batch (the only phase whose samples
  /// are independent; BO iterations stay serialized, as in the paper).
  /// All warm-up params are drawn up front from the single rng stream and
  /// results land by sample index, so the history is byte-identical for
  /// any value.  Values != 1 require a thread-safe objective.  0 resolves
  /// via exec::resolve_jobs (WFR_JOBS, then hardware concurrency).
  int jobs = 1;

  void validate() const;
};

/// A black-box objective: normalized params -> runtime seconds.
using Objective = std::function<double(std::span<const double>)>;

/// Runs the BO loop and returns the history (size total_samples).
History tune(const Objective& objective, std::size_t dim,
             const TunerConfig& config);

}  // namespace wfr::autotune

#include "autotune/gp.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::autotune {

void GpParams::validate() const {
  util::require(length_scale > 0.0, "GP length_scale must be > 0");
  util::require(signal_variance > 0.0, "GP signal_variance must be > 0");
  util::require(noise_variance >= 0.0, "GP noise_variance must be >= 0");
}

GaussianProcess::GaussianProcess(GpParams params) : params_(params) {
  params_.validate();
}

double GaussianProcess::kernel(std::span<const double> a,
                               std::span<const double> b) const {
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return params_.signal_variance *
         std::exp(-sq / (2.0 * params_.length_scale * params_.length_scale));
}

void GaussianProcess::fit(const std::vector<std::vector<double>>& inputs,
                          std::span<const double> targets) {
  util::require(!inputs.empty(), "GP fit needs at least one observation");
  util::require(inputs.size() == targets.size(),
                "GP fit: inputs/targets size mismatch");
  const std::size_t dim = inputs[0].size();
  util::require(dim >= 1, "GP fit: empty input points");
  for (const auto& x : inputs)
    util::require(x.size() == dim, "GP fit: inconsistent dimensionality");

  inputs_ = inputs;
  const std::size_t n = inputs_.size();

  target_mean_ = 0.0;
  for (double y : targets) target_mean_ += y;
  target_mean_ /= static_cast<double>(n);
  targets_centered_.assign(targets.begin(), targets.end());
  for (double& y : targets_centered_) y -= target_mean_;
  double var = 0.0;
  for (double y : targets_centered_) var += y * y;
  var /= static_cast<double>(n);
  target_scale_ = var > 1e-300 ? std::sqrt(var) : 1.0;
  for (double& y : targets_centered_) y /= target_scale_;

  math::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = kernel(inputs_[i], inputs_[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  // Noise plus a small jitter for numerical positive-definiteness.
  k.add_diagonal(params_.noise_variance + 1e-10 * params_.signal_variance);
  chol_ = math::cholesky(k);
  alpha_ = math::cholesky_solve(chol_, targets_centered_);
  fitted_ = true;
}

GpPrediction GaussianProcess::predict(std::span<const double> x) const {
  util::require(fitted_, "GP predict before fit");
  util::require(x.size() == inputs_[0].size(),
                "GP predict: dimensionality mismatch");
  const std::size_t n = inputs_.size();
  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = kernel(x, inputs_[i]);

  GpPrediction out;
  out.mean = target_mean_ + target_scale_ * math::dot(k_star, alpha_);
  // var = k(x,x) - v^T v with v = L^-1 k_star, in standardized units.
  const std::vector<double> v = math::solve_lower(chol_, k_star);
  const double reduction = math::dot(v, v);
  out.variance = std::max(kernel(x, x) - reduction, 0.0) * target_scale_ *
                 target_scale_;
  return out;
}

double GaussianProcess::select_length_scale(
    const std::vector<std::vector<double>>& inputs,
    std::span<const double> targets, std::span<const double> candidates) {
  util::require(!candidates.empty(),
                "select_length_scale needs candidate values");
  double best_scale = params_.length_scale;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (double candidate : candidates) {
    util::require(candidate > 0.0, "length-scale candidates must be > 0");
    params_.length_scale = candidate;
    fit(inputs, targets);
    const double ll = log_marginal_likelihood();
    if (ll > best_ll) {
      best_ll = ll;
      best_scale = candidate;
    }
  }
  params_.length_scale = best_scale;
  fit(inputs, targets);
  return best_scale;
}

double GaussianProcess::log_marginal_likelihood() const {
  util::require(fitted_, "GP log-likelihood before fit");
  const auto n = static_cast<double>(inputs_.size());
  const double data_fit = -0.5 * math::dot(targets_centered_, alpha_);
  const double complexity = -0.5 * math::log_det_from_cholesky(chol_);
  const double norm = -0.5 * n * std::log(2.0 * M_PI);
  return data_fit + complexity + norm;
}

}  // namespace wfr::autotune

#pragma once
// Gaussian-process regression with a squared-exponential (RBF) kernel: the
// surrogate model behind the mini-GPTune auto-tuner (the paper's GPTune
// case study relies on Bayesian optimization with GP surrogates).
//
// Scaled for tens-to-hundreds of observations: exact inference via
// Cholesky factorization (O(n^3) fit, O(n) predict mean / O(n^2) variance).

#include <span>
#include <vector>

#include "math/matrix.hpp"

namespace wfr::autotune {

/// Hyperparameters of the RBF kernel
///   k(a, b) = signal_variance * exp(-|a-b|^2 / (2 length_scale^2))
/// plus observation noise on the diagonal.
struct GpParams {
  double length_scale = 0.3;
  double signal_variance = 1.0;
  double noise_variance = 1e-6;

  void validate() const;
};

/// A posterior prediction at one point.
struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;
};

/// Exact GP regressor.  Inputs live in [0,1]^d (the tuner normalizes);
/// outputs are standardized internally (zero mean, unit variance) so the
/// default hyperparameters behave across objective scales.
class GaussianProcess {
 public:
  explicit GaussianProcess(GpParams params = {});

  /// Fits the posterior to observations.  Throws InvalidArgument on
  /// inconsistent shapes or an empty training set.
  void fit(const std::vector<std::vector<double>>& inputs,
           std::span<const double> targets);

  bool is_fitted() const { return fitted_; }
  std::size_t observation_count() const { return inputs_.size(); }
  const GpParams& params() const { return params_; }

  /// Posterior mean and variance at `x`.  Requires a fitted model and
  /// matching dimensionality.
  GpPrediction predict(std::span<const double> x) const;

  /// Marginal log-likelihood of the training targets (for tests and
  /// hyperparameter sanity checks).
  double log_marginal_likelihood() const;

 public:
  /// Selects the length scale from `candidates` by refitting and keeping
  /// the highest marginal likelihood (type-II maximum likelihood on a
  /// grid — the standard lightweight GP hyperparameter scheme).  Returns
  /// the chosen length scale and leaves the model fitted with it.
  double select_length_scale(const std::vector<std::vector<double>>& inputs,
                             std::span<const double> targets,
                             std::span<const double> candidates);

 private:
  double kernel(std::span<const double> a, std::span<const double> b) const;

  GpParams params_;
  bool fitted_ = false;
  std::vector<std::vector<double>> inputs_;
  std::vector<double> targets_centered_;
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
  math::Matrix chol_;           // L with K = L L^T
  std::vector<double> alpha_;   // K^-1 (y - mean)
};

}  // namespace wfr::autotune

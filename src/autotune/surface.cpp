#include "autotune/surface.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wfr::autotune {

namespace {
// The global optimum location of the landscape below.
constexpr double kOptX0 = 0.30;
constexpr double kOptX1 = 0.62;
constexpr double kOptX2 = 0.75;
}  // namespace

SuperluSurface::SuperluSurface(int matrix_dim, double noise_sigma,
                               std::uint64_t noise_seed)
    : matrix_dim_(matrix_dim), noise_sigma_(noise_sigma), rng_(noise_seed) {
  util::require(matrix_dim >= 16, "matrix_dim must be >= 16");
  util::require(noise_sigma >= 0.0, "noise_sigma must be >= 0");
  // Runtime scale: a 4960^2 sparse factorization lands around a third of a
  // second on one Milan socket; scale cubically in the dimension.
  const double n = static_cast<double>(matrix_dim_);
  base_seconds_ = 0.28 * std::pow(n / 4960.0, 3.0);
}

double SuperluSurface::evaluate_exact(std::span<const double> x) const {
  util::require(x.size() == dim(), "surface expects 3 parameters");
  for (double v : x)
    util::require(v >= 0.0 && v <= 1.0,
                  "surface parameters must lie in [0,1]");

  // Penalty bowls around the optimum (anisotropic quadratics) plus a local
  // basin near (0.8, 0.2, 0.3) that is 12% worse than the optimum.
  auto sq = [](double v) { return v * v; };
  const double global = 1.0 + 2.2 * sq(x[0] - kOptX0) +
                        1.6 * sq(x[1] - kOptX1) + 0.9 * sq(x[2] - kOptX2);
  const double local_center = 1.12 + 3.0 * sq(x[0] - 0.8) +
                              2.5 * sq(x[1] - 0.2) + 2.0 * sq(x[2] - 0.3);
  // Smooth-min of the two basins; ridge term models grid-aspect cliffs.
  const double basin = -std::log(std::exp(-4.0 * global) +
                                 std::exp(-4.0 * local_center)) /
                       4.0;
  const double ridge = 0.08 * std::sin(6.0 * M_PI * x[0]) *
                       std::sin(4.0 * M_PI * x[1]);
  return base_seconds_ * (basin + ridge + 0.1);
}

double SuperluSurface::evaluate(std::span<const double> x) {
  double value = evaluate_exact(x);
  if (noise_sigma_ > 0.0) value *= rng_.lognormal(0.0, noise_sigma_);
  return value;
}

std::vector<double> SuperluSurface::optimum() const {
  // The ridge perturbs the quadratic argmin slightly; a local grid refine
  // keeps the reported optimum honest.
  std::vector<double> best{kOptX0, kOptX1, kOptX2};
  double best_v = evaluate_exact(best);
  const double delta = 0.02;
  for (int i = -3; i <= 3; ++i) {
    for (int j = -3; j <= 3; ++j) {
      for (int k = -3; k <= 3; ++k) {
        std::vector<double> cand{kOptX0 + i * delta, kOptX1 + j * delta,
                                 kOptX2 + k * delta};
        bool in_range = true;
        for (double v : cand) in_range = in_range && v >= 0.0 && v <= 1.0;
        if (!in_range) continue;
        const double v = evaluate_exact(cand);
        if (v < best_v) {
          best_v = v;
          best = cand;
        }
      }
    }
  }
  return best;
}

double SuperluSurface::optimum_value() const { return evaluate_exact(optimum()); }

double SuperluSurface::default_value() const {
  const std::vector<double> mid{0.5, 0.5, 0.5};
  return evaluate_exact(mid);
}

}  // namespace wfr::autotune

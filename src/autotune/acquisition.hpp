#pragma once
// Acquisition for Bayesian optimization: expected improvement (EI) over a
// GP posterior, with random-candidate maximization.  Minimization
// convention throughout (we tune runtimes).

#include <span>
#include <vector>

#include "autotune/gp.hpp"
#include "math/rng.hpp"

namespace wfr::autotune {

/// Expected improvement of sampling a point with posterior (mean, variance)
/// when the best observed value so far is `best` (minimization: improvement
/// is best - y).  Zero variance yields max(best - mean, 0).
double expected_improvement(double mean, double variance, double best);

/// Proposes the next point to evaluate: draws `candidate_count` uniform
/// points in [0,1]^dim and returns the EI-argmax.  Requires a fitted GP.
std::vector<double> propose_next(const GaussianProcess& gp, std::size_t dim,
                                 double best_observed, math::Rng& rng,
                                 int candidate_count = 256);

}  // namespace wfr::autotune

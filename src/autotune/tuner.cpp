#include "autotune/tuner.hpp"

#include <algorithm>

#include "autotune/acquisition.hpp"
#include "exec/thread_pool.hpp"
#include "util/error.hpp"

namespace wfr::autotune {

const Sample& History::best() const {
  util::require(!samples.empty(), "tuning history is empty");
  return *std::min_element(samples.begin(), samples.end(),
                           [](const Sample& a, const Sample& b) {
                             return a.value < b.value;
                           });
}

std::vector<double> History::best_trajectory() const {
  std::vector<double> out;
  out.reserve(samples.size());
  double best = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    best = i == 0 ? samples[i].value : std::min(best, samples[i].value);
    out.push_back(best);
  }
  return out;
}

void TunerConfig::validate() const {
  util::require(total_samples >= 1, "total_samples must be >= 1");
  util::require(warmup_samples >= 1, "warmup_samples must be >= 1");
  util::require(warmup_samples <= total_samples,
                "warmup cannot exceed total samples");
  util::require(ei_candidates >= 1, "ei_candidates must be >= 1");
  gp.validate();
}

History tune(const Objective& objective, std::size_t dim,
             const TunerConfig& config) {
  config.validate();
  util::require(dim >= 1, "tune needs dim >= 1");
  util::require(static_cast<bool>(objective), "tune needs an objective");

  math::Rng rng(config.seed);
  History history;
  history.samples.reserve(static_cast<std::size_t>(config.total_samples));

  // Warm-up: uniform random samples.  Params are all drawn first (one rng
  // stream, one fixed order), then the independent evaluations fan out
  // over a pool when config.jobs != 1; results land by sample index, so
  // the history is byte-identical for any job count.
  const int warmup = std::min(config.warmup_samples, config.total_samples);
  for (int i = 0; i < warmup; ++i) {
    Sample s;
    s.params.resize(dim);
    for (double& p : s.params) p = rng.uniform();
    history.samples.push_back(std::move(s));
  }
  if (config.jobs == 1 || warmup == 1) {
    for (Sample& s : history.samples) s.value = objective(s.params);
  } else {
    exec::ThreadPool pool(config.jobs);
    exec::parallel_for(pool, history.samples.size(), [&](std::size_t i) {
      history.samples[i].value = objective(history.samples[i].params);
    });
  }

  // BO iterations: fit GP on everything seen, propose by EI, evaluate.
  GaussianProcess gp(config.gp);
  while (static_cast<int>(history.samples.size()) < config.total_samples) {
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    xs.reserve(history.samples.size());
    ys.reserve(history.samples.size());
    for (const Sample& s : history.samples) {
      xs.push_back(s.params);
      ys.push_back(s.value);
    }
    if (config.adapt_length_scale) {
      static constexpr double kScaleGrid[] = {0.1, 0.2, 0.3, 0.5, 0.8};
      gp.select_length_scale(xs, ys, kScaleGrid);
    } else {
      gp.fit(xs, ys);
    }
    Sample s;
    s.params = propose_next(gp, dim, history.best().value, rng,
                            config.ei_candidates);
    s.value = objective(s.params);
    history.samples.push_back(std::move(s));
  }
  return history;
}

}  // namespace wfr::autotune

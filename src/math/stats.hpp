#pragma once
// Summary statistics used for trace aggregation, benchmark reporting, and
// property tests.

#include <cstddef>
#include <span>
#include <vector>

namespace wfr::math {

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 for n < 2.
double stddev(std::span<const double> xs);

/// Geometric mean; requires all inputs > 0. 0 for empty input.
double geomean(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100].  Requires non-empty xs.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// Sum of elements.
double sum(std::span<const double> xs);

/// True when |a - b| <= tol * max(1, |a|, |b|) (relative-with-floor).
bool approx_equal(double a, double b, double tol = 1e-9);

/// Relative error |a - b| / |b|; returns |a| when b == 0.
double relative_error(double a, double b);

}  // namespace wfr::math

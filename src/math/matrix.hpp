#pragma once
// Small dense linear algebra: a row-major Matrix, Cholesky factorization,
// and triangular solves.  Sized for the auto-tuner's Gaussian-process
// surrogate (tens to low hundreds of rows), not for HPC-scale kernels.

#include <cstddef>
#include <span>
#include <vector>

namespace wfr::math {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates from nested initializer data (each inner vector is a row).
  /// Requires all rows the same length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// The n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Matrix product; requires cols() == other.rows().
  Matrix multiply(const Matrix& other) const;

  /// Transpose.
  Matrix transposed() const;

  /// Matrix-vector product; requires x.size() == cols().
  std::vector<double> multiply(std::span<const double> x) const;

  /// Element-wise addition; requires matching shapes.
  Matrix add(const Matrix& other) const;

  /// Adds `value` to each diagonal element (jitter / ridge).
  void add_diagonal(double value);

  /// Frobenius norm.
  double frobenius_norm() const;

  /// True when shapes match and all elements are within `tol`.
  bool approx_equal(const Matrix& other, double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor L of a symmetric positive-definite A
/// (A = L * L^T).  Throws InvalidArgument when A is not square or not
/// positive definite.
Matrix cholesky(const Matrix& a);

/// Solves L y = b for lower-triangular L (forward substitution).
std::vector<double> solve_lower(const Matrix& l, std::span<const double> b);

/// Solves L^T x = y for lower-triangular L (back substitution on the
/// transpose).
std::vector<double> solve_upper_from_lower(const Matrix& l,
                                           std::span<const double> y);

/// Solves A x = b using the Cholesky factor `l` of A.
std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b);

/// log(det(A)) from the Cholesky factor of A: 2 * sum(log(diag(L))).
double log_det_from_cholesky(const Matrix& l);

/// Dot product; requires equal sizes.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace wfr::math

#pragma once
// Deterministic random number generation for workload synthesis, contention
// injection, and the auto-tuner.  All stochastic components of the library
// take an explicit Rng so results are reproducible given a seed.

#include <cstdint>
#include <vector>

namespace wfr::math {

/// xoshiro256** PRNG: fast, high quality, and deterministic across
/// platforms (unlike std::mt19937's distribution implementations).
class Rng {
 public:
  /// Seeds the generator via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double normal(double mean, double stddev);

  /// Log-normal: exp(Normal(mu, sigma)).  Used for task-time jitter.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate (> 0).  Used for arrival processes.
  double exponential(double rate);

  /// Returns true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Splits off an independent generator (for parallel reproducibility).
  Rng split();

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace wfr::math

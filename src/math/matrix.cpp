#include "math/matrix.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  const std::size_t cols = rows[0].size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    util::require(rows[r].size() == cols,
                  "Matrix::from_rows requires equal-length rows");
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  return data_[r * cols_ + c];
}

Matrix Matrix::multiply(const Matrix& other) const {
  util::require(cols_ == other.rows_, "matrix multiply shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  util::require(x.size() == cols_, "matrix-vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * x[j];
    out[i] = s;
  }
  return out;
}

Matrix Matrix::add(const Matrix& other) const {
  util::require(rows_ == other.rows_ && cols_ == other.cols_,
                "matrix add shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + other.data_[i];
  return out;
}

void Matrix::add_diagonal(double value) {
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

Matrix cholesky(const Matrix& a) {
  util::require(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0)
      throw util::InvalidArgument(util::format(
          "cholesky: matrix not positive definite at pivot %zu (%g)", j, diag));
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

std::vector<double> solve_lower(const Matrix& l, std::span<const double> b) {
  util::require(l.rows() == l.cols() && b.size() == l.rows(),
                "solve_lower shape mismatch");
  const std::size_t n = l.rows();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  return y;
}

std::vector<double> solve_upper_from_lower(const Matrix& l,
                                           std::span<const double> y) {
  util::require(l.rows() == l.cols() && y.size() == l.rows(),
                "solve_upper_from_lower shape mismatch");
  const std::size_t n = l.rows();
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& l, std::span<const double> b) {
  return solve_upper_from_lower(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Matrix& l) {
  double s = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) s += std::log(l(i, i));
  return 2.0 * s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  util::require(a.size() == b.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace wfr::math

#include "math/fit.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace wfr::math {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  util::require(xs.size() == ys.size(), "fit_linear size mismatch");
  util::require(xs.size() >= 2, "fit_linear requires >= 2 points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  util::require(std::fabs(denom) > 1e-300, "fit_linear: x values are constant");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  // R^2.
  const double mean_y = sy / n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  util::require(xs.size() == ys.size(), "fit_power_law size mismatch");
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    util::require(xs[i] > 0.0 && ys[i] > 0.0,
                  "fit_power_law requires positive inputs");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

double eval_power_law(const LinearFit& fit, double x) {
  return std::exp(fit.intercept) * std::pow(x, fit.slope);
}

}  // namespace wfr::math

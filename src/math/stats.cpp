#include "math/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace wfr::math {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  util::require(count_ > 0, "Accumulator::min on empty accumulator");
  return min_;
}

double Accumulator::max() const {
  util::require(count_ > 0, "Accumulator::max on empty accumulator");
  return max_;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    util::require(x > 0.0, "geomean requires positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  util::require(!xs.empty(), "percentile of empty range");
  util::require(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

bool approx_equal(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

double relative_error(double a, double b) {
  if (b == 0.0) return std::fabs(a);
  return std::fabs(a - b) / std::fabs(b);
}

}  // namespace wfr::math

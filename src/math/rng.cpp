#include "math/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wfr::math {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // Guard against the all-zero state (unreachable via splitmix64, but cheap).
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  util::require(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  util::require(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  util::require(stddev >= 0.0, "normal stddev must be >= 0");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  util::require(sigma >= 0.0, "lognormal sigma must be >= 0");
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  util::require(rate > 0.0, "exponential rate must be > 0");
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace wfr::math

#pragma once
// Least-squares fitting helpers used for scaling analysis (e.g. checking
// that simulated CosmoFlow throughput is linear in the instance count, or
// fitting strong-scaling efficiency curves).

#include <span>

namespace wfr::math {

/// Result of a simple linear fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 for a perfect fit.
  double r_squared = 0.0;
};

/// Ordinary least squares on (x, y) pairs.  Requires >= 2 points and
/// non-constant x.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits y = c * x^p by linear regression in log-log space.  Requires all
/// inputs strictly positive.  Returns {slope=p, intercept=log(c), r^2}.
LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys);

/// Evaluates a fitted power law at x: exp(intercept) * x^slope.
double eval_power_law(const LinearFit& fit, double x);

}  // namespace wfr::math

#include "util/error.hpp"

namespace wfr::util {

void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

void ensure(bool condition, const std::string& message) {
  if (!condition) throw InternalError(message);
}

}  // namespace wfr::util

#pragma once
// Checked small-file IO.  Every CLI artifact (NDJSON sweeps, metrics
// snapshots, traces, checkpoints) goes through these helpers so a
// failed write — unwritable directory, permission error, disk full —
// fails loudly with the path in the message instead of silently
// producing a truncated or missing file.

#include <string>
#include <string_view>

namespace wfr::util {

/// Reads a whole file; throws Error("cannot read '<path>'") on failure.
std::string read_file(const std::string& path);

/// Writes (truncating) and flushes `content`; throws
/// Error("cannot write '<path>': ...") when the file cannot be opened or
/// any part of the write fails.
void write_file(const std::string& path, std::string_view content);

/// write_file through a sibling temp file plus rename, so readers never
/// observe a partially written file (checkpoints rely on this).
void write_file_atomic(const std::string& path, std::string_view content);

}  // namespace wfr::util

#pragma once
// Unit constants, formatting, and parsing for the quantities the Workflow
// Roofline model traffics in: bytes, flops, bandwidths, and times.
//
// Conventions used throughout the library (matching the paper):
//   * Volumes are stored as raw doubles in BYTES or FLOPS.
//   * Rates are stored as raw doubles in BYTES/SECOND or FLOPS/SECOND.
//   * Times are stored as raw doubles in SECONDS.
//   * Decimal (SI) prefixes are used: 1 GB = 1e9 bytes, matching vendor
//     peak-bandwidth sheets (e.g. "PCIe 4.0 at 25 GB/s/direction").

#include <string>
#include <string_view>

namespace wfr::util {

// --- SI prefix constants -------------------------------------------------
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;
inline constexpr double kPeta = 1e15;
inline constexpr double kExa = 1e18;

// Convenience volume constants.
inline constexpr double kKB = kKilo;
inline constexpr double kMB = kMega;
inline constexpr double kGB = kGiga;
inline constexpr double kTB = kTera;
inline constexpr double kPB = kPeta;

// Convenience rate constants (bytes/second).
inline constexpr double kGBs = kGiga;
inline constexpr double kTBs = kTera;

// Convenience compute constants (flops and flops/second).
inline constexpr double kGFLOP = kGiga;
inline constexpr double kTFLOP = kTera;
inline constexpr double kPFLOP = kPeta;
inline constexpr double kGFLOPS = kGiga;
inline constexpr double kTFLOPS = kTera;
inline constexpr double kPFLOPS = kPeta;

// Time constants (seconds).
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;

// --- Formatting ----------------------------------------------------------

/// Formats a byte volume with an auto-selected SI prefix, e.g. "5 TB".
std::string format_bytes(double bytes);

/// Formats a byte rate with an auto-selected SI prefix, e.g. "5.6 TB/s".
std::string format_rate(double bytes_per_second);

/// Formats a flop count, e.g. "1164 PFLOP".
std::string format_flops(double flops);

/// Formats a flop rate, e.g. "38.8 TFLOP/s".
std::string format_flops_rate(double flops_per_second);

/// Formats a duration: "85 ms", "17.2 s", "12.5 min", "3.4 h".
std::string format_seconds(double seconds);

/// Formats a generic value with an SI prefix and unit suffix.
std::string format_si(double value, std::string_view unit);

// --- Parsing -------------------------------------------------------------

/// Parses a byte volume such as "5 TB", "45MB", "1.5e3 GB", or "1024"
/// (bare numbers are bytes).  Throws ParseError on malformed input.
double parse_bytes(std::string_view text);

/// Parses a byte rate such as "100 GB/s" or "5.6TB/s".
/// Throws ParseError on malformed input.
double parse_rate(std::string_view text);

/// Parses a flop count such as "1164 PFLOP" / "100 GFLOPs".
double parse_flops(std::string_view text);

/// Parses a duration such as "600 s", "10 min", "1.5 h", "250 ms".
double parse_seconds(std::string_view text);

}  // namespace wfr::util

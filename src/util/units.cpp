#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::util {

namespace {

struct Prefix {
  double factor;
  const char* symbol;
};

constexpr std::array<Prefix, 7> kPrefixes{{
    {kExa, "E"},
    {kPeta, "P"},
    {kTera, "T"},
    {kGiga, "G"},
    {kMega, "M"},
    {kKilo, "k"},
    {1.0, ""},
}};

// Formats `value` scaled by the largest prefix whose factor it reaches,
// trimming trailing zeros ("5 TB" rather than "5.00 TB").
std::string format_with_prefix(double value, std::string_view unit) {
  if (value == 0.0) return format("0 %.*s", static_cast<int>(unit.size()), unit.data());
  const double mag = std::fabs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const Prefix& p : kPrefixes) {
    if (mag >= p.factor) {
      chosen = &p;
      break;
    }
  }
  const double scaled = value / chosen->factor;
  std::string num = format("%.3g", scaled);
  return format("%s %s%.*s", num.c_str(), chosen->symbol,
                static_cast<int>(unit.size()), unit.data());
}

double prefix_factor(char c) {
  switch (c) {
    case 'k': case 'K': return kKilo;
    case 'm': case 'M': return kMega;
    case 'g': case 'G': return kGiga;
    case 't': case 'T': return kTera;
    case 'p': case 'P': return kPeta;
    case 'e': case 'E': return kExa;
    default: return 0.0;
  }
}

// Splits "5.6TB/s" into the numeric part and the unit tail.
void split_number_and_unit(std::string_view text, double* number,
                           std::string* unit) {
  const std::string s = trim(text);
  require(!s.empty(), "empty quantity string");
  std::size_t pos = 0;
  // Accept a leading sign, digits, decimal point, and exponent.
  const char* begin = s.c_str();
  char* end = nullptr;
  *number = std::strtod(begin, &end);
  if (end == begin) throw ParseError("no number in quantity: '" + s + "'");
  pos = static_cast<std::size_t>(end - begin);
  *unit = trim(s.substr(pos));
}

}  // namespace

std::string format_bytes(double bytes) { return format_with_prefix(bytes, "B"); }

std::string format_rate(double bytes_per_second) {
  return format_with_prefix(bytes_per_second, "B/s");
}

std::string format_flops(double flops) {
  return format_with_prefix(flops, "FLOP");
}

std::string format_flops_rate(double flops_per_second) {
  return format_with_prefix(flops_per_second, "FLOP/s");
}

std::string format_seconds(double seconds) {
  const double mag = std::fabs(seconds);
  if (mag == 0.0) return "0 s";
  if (mag < 1e-3) return format("%.3g us", seconds * 1e6);
  if (mag < 1.0) return format("%.3g ms", seconds * 1e3);
  if (mag < 120.0) return format("%.3g s", seconds);
  if (mag < 2.0 * kHour) return format("%.3g min", seconds / kMinute);
  return format("%.3g h", seconds / kHour);
}

std::string format_si(double value, std::string_view unit) {
  return format_with_prefix(value, unit);
}

namespace {

// Shared implementation: parses "<number> [prefix]<base>[/s]" where `base`
// is a recognized unit word for the quantity kind.
double parse_quantity(std::string_view text, bool expect_rate,
                      std::initializer_list<std::string_view> base_words,
                      std::string_view what) {
  double number = 0.0;
  std::string unit;
  split_number_and_unit(text, &number, &unit);
  if (unit.empty()) {
    if (expect_rate)
      throw ParseError("rate requires a unit (e.g. 'GB/s'): '" +
                       std::string(text) + "'");
    return number;  // bare number: base units
  }
  std::string u = unit;
  bool has_per_second = false;
  const std::string lower = to_lower(u);
  if (ends_with(lower, "/s")) {
    has_per_second = true;
    u = u.substr(0, u.size() - 2);
  } else if (ends_with(lower, "ps") && !ends_with(lower, "flops") &&
             lower != "ps") {
    // e.g. "GBps"
    has_per_second = true;
    u = u.substr(0, u.size() - 2);
  }
  if (expect_rate && !has_per_second)
    throw ParseError("expected a rate (unit ending in /s) for " +
                     std::string(what) + ": '" + std::string(text) + "'");
  if (!expect_rate && has_per_second)
    throw ParseError("expected a volume, got a rate for " + std::string(what) +
                     ": '" + std::string(text) + "'");

  u = trim(u);
  require(!u.empty(), "missing unit word in '" + std::string(text) + "'");

  // Try to match the unit word with an optional SI prefix character.
  for (std::string_view base : base_words) {
    const std::string lu = to_lower(u);
    const std::string lb = to_lower(std::string(base));
    if (lu == lb) return number;  // no prefix
    if (lu.size() == lb.size() + 1 && lu.substr(1) == lb) {
      const double f = prefix_factor(u[0]);
      if (f > 0.0) return number * f;
    }
  }
  throw ParseError("unrecognized unit '" + unit + "' in '" +
                   std::string(text) + "'");
}

}  // namespace

double parse_bytes(std::string_view text) {
  return parse_quantity(text, /*expect_rate=*/false, {"B", "byte", "bytes"},
                        "bytes");
}

double parse_rate(std::string_view text) {
  return parse_quantity(text, /*expect_rate=*/true, {"B", "byte", "bytes"},
                        "rate");
}

double parse_flops(std::string_view text) {
  return parse_quantity(text, /*expect_rate=*/false,
                        {"FLOP", "FLOPs", "FLOPS", "flop", "flops"}, "flops");
}

double parse_seconds(std::string_view text) {
  double number = 0.0;
  std::string unit;
  split_number_and_unit(text, &number, &unit);
  if (unit.empty()) return number;
  const std::string u = to_lower(unit);
  if (u == "s" || u == "sec" || u == "secs" || u == "second" || u == "seconds")
    return number;
  if (u == "ms") return number * 1e-3;
  if (u == "us") return number * 1e-6;
  if (u == "min" || u == "mins" || u == "minute" || u == "minutes")
    return number * kMinute;
  if (u == "h" || u == "hr" || u == "hour" || u == "hours")
    return number * kHour;
  throw ParseError("unrecognized time unit '" + unit + "' in '" +
                   std::string(text) + "'");
}

}  // namespace wfr::util

#pragma once
// A small, dependency-free JSON value type with a recursive-descent parser
// and a pretty-printing serializer.  Used for workflow descriptions, system
// specifications, and trace export.
//
// Design notes:
//   * Objects preserve insertion order (std::vector of pairs) so that
//     serialized specs remain diff-friendly.
//   * Numbers are stored as double; this library never needs 64-bit-exact
//     integers larger than 2^53.
//   * Accessors throw wfr::util::ParseError / NotFound on type mismatches
//     so that malformed input files produce actionable messages.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wfr::util {

class Json;

using JsonArray = std::vector<Json>;
using JsonMember = std::pair<std::string, Json>;

/// An ordered JSON object (preserves member insertion order).
class JsonObject {
 public:
  /// Inserts or overwrites member `key`.
  void set(std::string key, Json value);

  /// True when the object has a member named `key`.
  bool contains(std::string_view key) const;

  /// Returns the member named `key`; throws NotFound when absent.
  const Json& at(std::string_view key) const;

  /// Returns the member named `key` or nullptr when absent.
  const Json* find(std::string_view key) const;

  const std::vector<JsonMember>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

 private:
  std::vector<JsonMember> members_;
};

/// A JSON value: null, bool, number, string, array, or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), number_(d) {}
  Json(int i) : type_(Type::kNumber), number_(i) {}
  Json(std::int64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(std::size_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw ParseError when the value has a different type.
  bool as_bool() const;
  double as_number() const;
  /// as_number() narrowed and checked to be integral.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object member access; throws when not an object / key absent.
  const Json& at(std::string_view key) const;
  /// Array element access; throws when not an array / out of range.
  const Json& at(std::size_t index) const;

  /// Returns object member `key` as a double, or `fallback` when absent.
  double number_or(std::string_view key, double fallback) const;
  /// Returns object member `key` as a string, or `fallback` when absent.
  std::string string_or(std::string_view key, std::string fallback) const;
  /// Returns object member `key` as a bool, or `fallback` when absent.
  bool bool_or(std::string_view key, bool fallback) const;

  /// Parses JSON text.  Throws ParseError with a line/column message.
  /// Hardened against hostile input: containers nested deeper than 128
  /// levels, numbers outside the double range (e.g. 1e999), and UTF-16
  /// surrogate \u escapes are all rejected.
  static Json parse(std::string_view text);

  /// Serializes compactly (no whitespace).
  std::string dump() const;

  /// Serializes with 2-space indentation.
  std::string pretty() const;

  bool operator==(const Json& other) const;

 private:
  void write(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Appends `s` to `out` as a JSON string literal (quotes included), using
/// exactly the serializer's escaping rules.  For hot paths that build
/// NDJSON rows into a reused buffer without materializing Json values.
void json_append_escaped(std::string& out, std::string_view s);

}  // namespace wfr::util

#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::util {

// --- JsonObject ------------------------------------------------------------

void JsonObject::set(std::string key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

bool JsonObject::contains(std::string_view key) const {
  return find(key) != nullptr;
}

const Json* JsonObject::find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& JsonObject::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) throw NotFound("missing JSON member '" + std::string(key) + "'");
  return *v;
}

// --- Typed accessors --------------------------------------------------------

namespace {
const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(Json::Type actual, const char* wanted) {
  throw ParseError(std::string("JSON type mismatch: wanted ") + wanted +
                   ", got " + type_name(actual));
}
}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error(type_, "bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error(type_, "number");
  return number_;
}

std::int64_t Json::as_int() const {
  const double d = as_number();
  const double r = std::nearbyint(d);
  if (!(std::fabs(d - r) <= 1e-9))
    throw ParseError(format("JSON number %g is not an integer", d));
  // 2^63 is the first double at or beyond which the int64 cast is undefined.
  if (!(std::fabs(r) < 9223372036854775808.0))
    throw ParseError(format("JSON number %g is out of integer range", d));
  return static_cast<std::int64_t>(r);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error(type_, "string");
  return string_;
}

const JsonArray& Json::as_array() const {
  if (type_ != Type::kArray) type_error(type_, "array");
  return array_;
}

const JsonObject& Json::as_object() const {
  if (type_ != Type::kObject) type_error(type_, "object");
  return object_;
}

JsonArray& Json::as_array() {
  if (type_ != Type::kArray) type_error(type_, "array");
  return array_;
}

JsonObject& Json::as_object() {
  if (type_ != Type::kObject) type_error(type_, "object");
  return object_;
}

const Json& Json::at(std::string_view key) const { return as_object().at(key); }

const Json& Json::at(std::size_t index) const {
  const JsonArray& a = as_array();
  if (index >= a.size())
    throw NotFound(format("JSON array index %zu out of range (size %zu)",
                          index, a.size()));
  return a[index];
}

double Json::number_or(std::string_view key, double fallback) const {
  const Json* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_number();
}

std::string Json::string_or(std::string_view key, std::string fallback) const {
  const Json* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_string();
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* v = as_object().find(key);
  return v == nullptr ? fallback : v->as_bool();
}

// --- Parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  // Containers deeper than this are rejected rather than risking stack
  // overflow in the recursive descent; real spec files nest a handful deep.
  static constexpr int kMaxDepth = 128;

  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError(format("JSON parse error at line %zu col %zu: %s", line,
                            col, message.c_str()));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        // Allow // line comments in spec files.
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(format("expected '%c'", c));
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    if (++depth_ > kMaxDepth) fail("JSON nesting exceeds depth limit");
    JsonObject obj;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_whitespace();
      const char d = take();
      if (d == '}') break;
      if (d != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    --depth_;
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    if (++depth_ > kMaxDepth) fail("JSON nesting exceeds depth limit");
    JsonArray arr;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char d = take();
      if (d == ']') break;
      if (d != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    --depth_;
    return Json(std::move(arr));
  }

  unsigned take_hex_quad() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = take();
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = take_hex_quad();
            // A surrogate half is not a scalar value: a high surrogate
            // must pair with an immediately following \u low surrogate;
            // a lone or out-of-order half is rejected (encoding one as
            // UTF-8 would emit ill-formed CESU-8 bytes).
            if (code >= 0xDC00 && code <= 0xDFFF)
              fail("surrogate code point in \\u escape");
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (take() != '\\' || take() != 'u')
                fail("surrogate code point in \\u escape");
              const unsigned low = take_hex_quad();
              if (low < 0xDC00 || low > 0xDFFF)
                fail("surrogate code point in \\u escape");
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            // Encode the scalar value as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else if (code < 0x10000) {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xF0 | (code >> 18));
              out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) {
      pos_ = start;
      fail("malformed number '" + num + "'");
    }
    if (!std::isfinite(d)) {
      pos_ = start;
      fail("number '" + num + "' is out of range");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void write_escaped(std::string* out, const std::string& s) {
  json_append_escaped(*out, s);
}

void write_number(std::string* out, double d) {
  // Shortest-round-trip formatting (util/strings) so JSON output, the
  // Prometheus exposition, and check repro dumps agree byte-for-byte.
  *out += format_double(d);
}

}  // namespace

void json_append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

void Json::write(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
  const std::string closing_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: write_number(out, number_); break;
    case Type::kString: write_escaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      *out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        *out += pad;
        array_[i].write(out, indent, depth + 1);
        if (i + 1 < array_.size()) *out += ',';
        *out += nl;
      }
      *out += closing_pad;
      *out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      *out += nl;
      const auto& m = object_.members();
      for (std::size_t i = 0; i < m.size(); ++i) {
        *out += pad;
        write_escaped(out, m[i].first);
        *out += colon;
        m[i].second.write(out, indent, depth + 1);
        if (i + 1 < m.size()) *out += ',';
        *out += nl;
      }
      *out += closing_pad;
      *out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  write(&out, 0, 0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  write(&out, 2, 0);
  return out;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: {
      if (object_.size() != other.object_.size()) return false;
      for (const auto& [k, v] : object_.members()) {
        const Json* o = other.object_.find(k);
        if (o == nullptr || !(v == *o)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace wfr::util

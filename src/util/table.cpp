#include "util/table.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace wfr::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)), aligns_(header_.size(), Align::kLeft) {}

void TextTable::set_align(std::size_t index, Align align) {
  if (index >= aligns_.size()) aligns_.resize(index + 1, Align::kLeft);
  aligns_[index] = align;
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), /*is_rule=*/false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, /*is_rule=*/true}); }

std::string TextTable::str() const {
  std::size_t columns = header_.size();
  for (const Row& r : rows_) columns = std::max(columns, r.cells.size());

  std::vector<std::size_t> widths(columns, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  measure(header_);
  for (const Row& r : rows_)
    if (!r.is_rule) measure(r.cells);

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < columns; ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      const Align a = i < aligns_.size() ? aligns_[i] : Align::kLeft;
      line += (a == Align::kLeft) ? pad_right(cell, widths[i])
                                  : pad_left(cell, widths[i]);
      if (i + 1 < columns) line += "  ";
    }
    // Trim trailing spaces from left-aligned last columns.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string rule;
  for (std::size_t i = 0; i < columns; ++i) {
    rule += std::string(widths[i], '-');
    if (i + 1 < columns) rule += "  ";
  }
  rule += "\n";

  std::string out = render_row(header_);
  out += rule;
  for (const Row& r : rows_) out += r.is_rule ? rule : render_row(r.cells);
  return out;
}

}  // namespace wfr::util

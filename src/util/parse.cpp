#include "util/parse.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::util {

void bad_flag_value(const std::string& flag, const std::string& text) {
  throw InvalidArgument("bad value for --" + flag + ": '" + text + "'");
}

long parse_long_flag(const std::string& flag, const std::string& text) {
  const std::string trimmed = trim(text);
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(trimmed.c_str(), &end, 10);
  if (trimmed.empty() || end == nullptr || *end != '\0' || errno == ERANGE)
    bad_flag_value(flag, text);
  return value;
}

long parse_long_flag_in(const std::string& flag, const std::string& text,
                        long min, long max) {
  const long value = parse_long_flag(flag, text);
  if (value < min || value > max) bad_flag_value(flag, text);
  return value;
}

std::uint64_t parse_u64_flag(const std::string& flag,
                             const std::string& text) {
  const std::string trimmed = trim(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(trimmed.c_str(), &end, 10);
  if (trimmed.empty() || trimmed.front() == '-' || end == nullptr ||
      *end != '\0' || errno == ERANGE)
    bad_flag_value(flag, text);
  return static_cast<std::uint64_t>(value);
}

double parse_double_flag(const std::string& flag, const std::string& text) {
  const std::string trimmed = trim(text);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (trimmed.empty() || end == nullptr || *end != '\0' || errno == ERANGE)
    bad_flag_value(flag, text);
  return value;
}

}  // namespace wfr::util

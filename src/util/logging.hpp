#pragma once
// Minimal leveled logging.  Off by default above kWarn; tests and the CLI
// can raise verbosity, and the WFR_LOG_LEVEL environment variable
// (debug|info|warn|error|off, case-insensitive) sets the startup level.
// Each message is formatted into one line — "[wfr LEVEL +12.345s] text" —
// and written to stderr with a single write under a mutex, so concurrent
// emitters never interleave.  Intended for coarse progress and
// diagnostics, not per-event simulator chatter.

#include <optional>
#include <string>
#include <string_view>

namespace wfr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted (default kWarn, or
/// WFR_LOG_LEVEL when set in the environment).
void set_log_level(LogLevel level);

/// Returns the current global log level.
LogLevel log_level();

/// Parses a level name ("debug", "INFO", "warn", "error", "off", or a
/// digit 0-4).  Returns nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Short upper-case name of `level` ("DEBUG" ... "OFF").
const char* log_level_name(LogLevel level);

/// Seconds elapsed on the monotonic clock since logging was first used —
/// the timestamp that appears in the message prefix.
double log_uptime_seconds();

/// Emits `message` to stderr when `level` >= the global level.  The full
/// line (prefix + message + newline) goes out in one write.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace wfr::util

#pragma once
// Minimal leveled logging.  Off by default above kWarn; tests and the CLI
// can raise verbosity.  Not thread-buffered: intended for coarse progress
// and diagnostics, not per-event simulator chatter.

#include <string>

namespace wfr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted (default kWarn).
void set_log_level(LogLevel level);

/// Returns the current global log level.
LogLevel log_level();

/// Emits `message` to stderr when `level` >= the global level.
void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace wfr::util

#include "util/hash.hpp"

#include <cstring>

#include "util/error.hpp"

namespace wfr::util {

namespace {

// Lane A is classic FNV-1a-64; lane B uses the same xor-multiply scheme
// with an unrelated odd multiplier and basis so the two 64-bit lanes
// decorrelate.  Both are finalized through a SplitMix64 avalanche, which
// fixes FNV's weak high-bit diffusion.
constexpr std::uint64_t kBasisA = 14695981039346656037ULL;
constexpr std::uint64_t kPrimeA = 1099511628211ULL;
constexpr std::uint64_t kBasisB = 0x2b992ddfa23249d6ULL;
constexpr std::uint64_t kPrimeB = 0x9e3779b97f4a7c15ULL;

std::uint64_t avalanche(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

HashStream::HashStream() : a_(kBasisA), b_(kBasisB) {}

void HashStream::bytes(const void* data, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    a_ = (a_ ^ p[i]) * kPrimeA;
    b_ = (b_ ^ p[i]) * kPrimeB;
  }
}

void HashStream::u64(std::uint64_t value) {
  unsigned char buffer[8];
  for (int i = 0; i < 8; ++i)
    buffer[i] = static_cast<unsigned char>(value >> (8 * i));
  bytes(buffer, sizeof(buffer));
}

void HashStream::i64(std::int64_t value) {
  u64(static_cast<std::uint64_t>(value));
}

void HashStream::f64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  u64(bits);
}

void HashStream::str(std::string_view text) {
  u64(text.size());
  bytes(text.data(), text.size());
}

Hash128 HashStream::digest() const {
  Hash128 hash;
  // Cross-feed the lanes before the avalanche so each output word
  // depends on both accumulators.
  hash.hi = avalanche(a_ + 0x9e3779b97f4a7c15ULL * b_);
  hash.lo = avalanche(b_ ^ (a_ >> 1) ^ 0x6a09e667f3bcc909ULL);
  return hash;
}

Hash128 hash_bytes(std::string_view data) {
  HashStream stream;
  stream.bytes(data.data(), data.size());
  return stream.digest();
}

std::string to_hex(const Hash128& hash) {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hash.hi : hash.lo;
    const int shift = 8 * (7 - (i % 8));
    const unsigned byte = static_cast<unsigned>((word >> shift) & 0xff);
    out[2 * static_cast<std::size_t>(i)] = digits[byte >> 4];
    out[2 * static_cast<std::size_t>(i) + 1] = digits[byte & 0xf];
  }
  return out;
}

Hash128 hash_from_hex(std::string_view hex) {
  if (hex.size() != 32)
    throw ParseError("bad Hash128 hex '" + std::string(hex) +
                     "': want 32 hex characters");
  Hash128 hash;
  for (int i = 0; i < 32; ++i) {
    const int digit = hex_digit(hex[static_cast<std::size_t>(i)]);
    if (digit < 0)
      throw ParseError("bad Hash128 hex '" + std::string(hex) +
                       "': invalid character");
    std::uint64_t& word = i < 16 ? hash.hi : hash.lo;
    word = (word << 4) | static_cast<std::uint64_t>(digit);
  }
  return hash;
}

}  // namespace wfr::util

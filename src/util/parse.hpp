#pragma once
// Strict numeric parsing for command-line flags and query parameters.
//
// std::stol-style prefix parsing silently accepts trailing garbage
// ("--port 80x" becomes port 80); these helpers require the whole token
// to be consumed and report the flag name and offending text instead.
// Shared by the wfr CLI and the serve layer's query-parameter handling.

#include <cstdint>
#include <string>

namespace wfr::util {

/// Throws InvalidArgument("bad value for --<flag>: '<text>'").
[[noreturn]] void bad_flag_value(const std::string& flag,
                                 const std::string& text);

/// Parses a decimal integer, rejecting empty, partially-consumed, or
/// out-of-range text.  Leading/trailing ASCII whitespace is tolerated.
long parse_long_flag(const std::string& flag, const std::string& text);

/// parse_long_flag restricted to [min, max] (inclusive).
long parse_long_flag_in(const std::string& flag, const std::string& text,
                        long min, long max);

/// Parses a non-negative decimal integer into uint64 with the same
/// full-consumption rules.
std::uint64_t parse_u64_flag(const std::string& flag,
                             const std::string& text);

/// Parses a floating-point value with the same full-consumption rules.
double parse_double_flag(const std::string& flag, const std::string& text);

}  // namespace wfr::util

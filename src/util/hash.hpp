#pragma once
// 128-bit streaming hash for canonical-byte identities: sweep memo-cache
// keys, grid fingerprints for checkpoint/resume, and any other place that
// needs a fixed-width digest of a canonical serialization instead of the
// serialization itself (a multi-KB JSON dump makes a terrible map key).
//
// This is a content identity, NOT a cryptographic hash: two lanes of
// FNV-1a-style xor-multiply mixing with independent bases, finalized
// through a SplitMix64 avalanche.  128 bits keep the collision
// probability for a 10^6..10^9-entry key space negligible (< 1e-18),
// which is what the million-point sweep cache relies on.
//
// Determinism contract: the digest is a pure function of the fed bytes,
// identical across runs, platforms, and job counts, so it is safe to
// persist (checkpoint files store the grid hash as hex).  Strings are fed
// length-prefixed, making the stream prefix-free: ("ab","c") and
// ("a","bc") digest differently.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace wfr::util {

/// A 128-bit digest, comparable and hex-serializable.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Hash128& a, const Hash128& b) {
    return !(a == b);
  }
  friend bool operator<(const Hash128& a, const Hash128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// Incremental hasher.  Feed typed values; digest() may be called at any
/// point (it finalizes a copy — the stream stays usable).
class HashStream {
 public:
  HashStream();

  /// Raw bytes (no length prefix; callers needing framing use str()).
  void bytes(const void* data, std::size_t size);
  /// Little-endian 64-bit value.
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  /// The IEEE-754 bit pattern (so the identity matches bit-for-bit input
  /// equality, the same notion the canonical JSON serialization has).
  void f64(double value);
  /// Length-prefixed string: the stream stays prefix-free.
  void str(std::string_view text);

  Hash128 digest() const;

 private:
  std::uint64_t a_;
  std::uint64_t b_;
};

/// One-shot digest of a byte string.
Hash128 hash_bytes(std::string_view data);

/// 32 lowercase hex characters (hi word first).
std::string to_hex(const Hash128& hash);

/// Parses to_hex output; throws ParseError on anything else.
Hash128 hash_from_hex(std::string_view hex);

}  // namespace wfr::util

#pragma once
// Error handling for the workflow-roofline library.
//
// The library throws exceptions derived from wfr::util::Error for
// unrecoverable misuse (invalid specifications, parse failures, broken
// invariants detected at API boundaries).  Hot paths (the simulator event
// loop, model evaluation) validate inputs up front and are exception-free
// afterwards.

#include <stdexcept>
#include <string>

namespace wfr::util {

/// Base class for all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an argument that violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Text (JSON, units, workflow descriptions) failed to parse.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A named entity (task, resource, field) was not found.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated; indicates a library bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `message` when `condition` is false.
void require(bool condition, const std::string& message);

/// Throws InternalError with `message` when `condition` is false.
void ensure(bool condition, const std::string& message);

}  // namespace wfr::util

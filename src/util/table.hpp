#pragma once
// Plain-text table formatting used by benchmark harness output and the CLI
// to print paper-vs-measured series in aligned columns.

#include <string>
#include <string_view>
#include <vector>

namespace wfr::util {

/// Column alignment within a TextTable.
enum class Align { kLeft, kRight };

/// Builds a monospace table:
///
///   TextTable t({"series", "paper", "measured"});
///   t.add_row({"good day", "17 min", "17.1 min"});
///   std::cout << t.str();
class TextTable {
 public:
  /// Creates a table with the given header; all columns default to
  /// left-aligned except those set via set_align().
  explicit TextTable(std::vector<std::string> header);

  /// Sets the alignment of column `index`.
  void set_align(std::size_t index, Align align);

  /// Appends a data row.  Rows shorter than the header are padded with
  /// empty cells; longer rows extend the column count.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal rule row.
  void add_rule();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table, including a rule under the header.
  std::string str() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_rule = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace wfr::util

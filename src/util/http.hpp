#pragma once
// Minimal HTTP/1.1 message handling for `wfr serve` (docs/SERVER.md): an
// incremental request parser and a deterministic response serializer.
//
// Scope: exactly what a loopback JSON service needs — request-line +
// headers + Content-Length bodies, keep-alive and pipelining, and hard
// limits that map to 4xx statuses.  No chunked transfer encoding (501),
// no multipart, no TLS.
//
// Determinism: serialize_response emits a fixed header set in a fixed
// order and never stamps clocks (no Date header), so a given
// HttpResponse always serializes to the same bytes — the property behind
// the serve layer's byte-identical-responses contract.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wfr::util {

/// One parsed request.  Header names keep their wire spelling; lookup is
/// case-insensitive per RFC 9110.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (uppercase on the wire)
  std::string target;   // request-target as sent, e.g. "/v1/svg?system=x"
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent (first match
  /// wins on duplicates).
  const std::string* header(std::string_view name) const;

  /// Request-target before '?'.
  std::string path() const;
  /// Request-target after '?' ("" when no query).
  std::string query() const;

  /// True when the connection should stay open after the response:
  /// HTTP/1.1 unless "Connection: close"; HTTP/1.0 only with
  /// "Connection: keep-alive".
  bool keep_alive() const;
};

/// Splits a query string ("a=1&b=x%20y") into decoded (name, value) pairs
/// in wire order.  '+' decodes to a space; malformed %-escapes throw
/// ParseError.  Fields without '=' get an empty value.
std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view query);

/// What a handler returns; the server serializes it.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Adds "Connection: close" and makes the server close afterwards.
  bool close = false;
};

/// Canonical reason phrase ("OK", "Not Found", ...); "Unknown" for
/// unlisted codes.
const char* http_reason_phrase(int status);

/// Serializes deterministically:
///   HTTP/1.1 <status> <reason>\r\n
///   Content-Type: <type>\r\n
///   Content-Length: <n>\r\n
///   [Connection: close\r\n]
///   \r\n<body>
std::string serialize_response(const HttpResponse& response);

/// Builds the standard JSON error payload ({"error":"<message>"}) with
/// Connection kept open (the request was well-framed, only bad content).
HttpResponse http_error(int status, std::string_view message);

/// Parser limits; exceeding one turns into the mapped error status.
struct HttpLimits {
  std::size_t max_header_bytes = 16 * 1024;        // 431 when exceeded
  std::size_t max_body_bytes = 4 * 1024 * 1024;    // 413 when exceeded
};

/// Incremental parser for the request stream of one connection.  feed()
/// appends raw bytes; next() extracts complete requests one at a time
/// (pipelined requests queue up in the buffer and come out in order).
///
/// After kError the connection is unrecoverable (framing is lost): send
/// error_status() with Connection: close and drop the socket.
class HttpParser {
 public:
  explicit HttpParser(HttpLimits limits = {});

  enum class Status { kNeedMore, kComplete, kError };

  /// Appends bytes received from the socket.
  void feed(std::string_view data);

  /// Extracts the next complete request into *out.  kNeedMore when the
  /// buffer holds only a partial request; kComplete consumes exactly that
  /// request's bytes (call again for pipelined successors).
  Status next(HttpRequest* out);

  /// Valid after kError: the response status that describes the failure
  /// (400 bad framing, 411 missing length, 413 body too large, 431
  /// headers too large, 501 unsupported transfer-encoding, 505 version).
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// True when no unconsumed bytes are buffered (the connection is
  /// between requests — safe to close on graceful shutdown).
  bool buffer_empty() const { return buffer_.empty(); }

 private:
  Status fail(int status, std::string message);

  HttpLimits limits_;
  std::string buffer_;
  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace wfr::util

#pragma once
// Small string utilities shared across the library.

#include <string>
#include <string_view>
#include <vector>

namespace wfr::util {

/// Returns `s` with leading and trailing ASCII whitespace removed.
std::string trim(std::string_view s);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> split_whitespace(std::string_view s);

/// ASCII lower-cases `s`.
std::string to_lower(std::string_view s);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True when `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Repeats `s` `count` times.
std::string repeat(std::string_view s, std::size_t count);

/// Pads `s` with spaces on the right (left-aligned) to width `w`.
std::string pad_right(std::string_view s, std::size_t w);

/// Pads `s` with spaces on the left (right-aligned) to width `w`.
std::string pad_left(std::string_view s, std::size_t w);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a double with the fewest digits that round-trip back to the same
/// value: integers print without a decimal point ("42", not "42.0000..."),
/// everything else uses the shortest %g precision whose strtod() recovers the
/// input bit-for-bit ("0.1", not "0.10000000000000001").  This is the single
/// number formatter shared by JSON serialization, the Prometheus exposition
/// in obs, and the differential-check repro dumps, so the same value always
/// serializes to the same bytes everywhere.
std::string format_double(double value);

/// format_double appended to `out` without a temporary string — the hot
/// NDJSON row writers call this once per numeric field.
void append_double(std::string& out, double value);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// Escapes the XML special characters &, <, >, ", '.
std::string xml_escape(std::string_view s);

}  // namespace wfr::util

#include "util/file.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace wfr::util {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) throw Error("cannot read '" + path + "': read failed");
  return out.str();
}

void write_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw Error("cannot write '" + path + "': failed to open for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) throw Error("cannot write '" + path + "': write failed");
}

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string temp = path + ".tmp";
  write_file(temp, content);
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw Error("cannot write '" + path + "': rename from temp failed");
  }
}

}  // namespace wfr::util

#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace wfr::util {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return std::string(s.substr(b, e - b));
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string repeat(std::string_view s, std::size_t count) {
  std::string out;
  out.reserve(s.size() * count);
  for (std::size_t i = 0; i < count; ++i) out += s;
  return out;
}

std::string pad_right(std::string_view s, std::size_t w) {
  std::string out(s);
  if (out.size() < w) out.append(w - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t w) {
  std::string out(s);
  if (out.size() < w) out.insert(out.begin(), w - out.size(), ' ');
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

void append_double(std::string& out, double value) {
  // Large enough for "%.0f" below 1e15 (16 digits + sign) and for
  // "%.17g" (17 significand digits + point + "e+308" + sign).
  char buf[40];
  if (value == std::nearbyint(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    out += buf;
    return;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      out += buf;
      return;
    }
  }
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

std::string format_double(double value) {
  std::string out;
  append_double(out, value);
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out += s.substr(pos);
      break;
    }
    out += s.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
  return out;
}

std::string xml_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace wfr::util

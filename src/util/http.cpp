#include "util/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::util {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string percent_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%') {
      if (i + 2 >= text.size()) throw ParseError("truncated %-escape in query");
      const int hi = hex_digit(text[i + 1]);
      const int lo = hex_digit(text[i + 2]);
      if (hi < 0 || lo < 0)
        throw ParseError("malformed %-escape in query: '" +
                         std::string(text.substr(i, 3)) + "'");
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers)
    if (iequals(key, name)) return &value;
  return nullptr;
}

std::string HttpRequest::path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::query() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? std::string() : target.substr(q + 1);
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = header("Connection");
  if (version == "HTTP/1.0")
    return connection != nullptr && iequals(*connection, "keep-alive");
  return connection == nullptr || !iequals(*connection, "close");
}

std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  if (query.empty()) return params;
  for (const std::string& field : split(query, '&')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      params.emplace_back(percent_decode(field), "");
    } else {
      params.emplace_back(percent_decode(field.substr(0, eq)),
                          percent_decode(field.substr(eq + 1)));
    }
  }
  return params;
}

const char* http_reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::string out;
  out.reserve(96 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += http_reason_phrase(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  if (response.close) out += "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

HttpResponse http_error(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  // Reuse the JSON string escaper by serializing through Json would pull
  // a dependency cycle; the error text here is plain ASCII from this
  // library, so escape just quotes and backslashes.
  std::string escaped;
  escaped.reserve(message.size());
  for (const char c : message) {
    if (c == '"' || c == '\\') escaped += '\\';
    if (c == '\n') {
      escaped += "\\n";
      continue;
    }
    escaped += c;
  }
  response.body = "{\"error\":\"" + escaped + "\"}\n";
  return response;
}

HttpParser::HttpParser(HttpLimits limits) : limits_(limits) {}

void HttpParser::feed(std::string_view data) {
  buffer_.append(data.data(), data.size());
}

HttpParser::Status HttpParser::fail(int status, std::string message) {
  error_status_ = status;
  error_message_ = std::move(message);
  return Status::kError;
}

HttpParser::Status HttpParser::next(HttpRequest* out) {
  if (error_status_ != 0) return Status::kError;

  const std::size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buffer_.size() > limits_.max_header_bytes)
      return fail(431, "request headers exceed " +
                           std::to_string(limits_.max_header_bytes) +
                           " bytes");
    return Status::kNeedMore;
  }
  if (header_end > limits_.max_header_bytes)
    return fail(431, "request headers exceed " +
                         std::to_string(limits_.max_header_bytes) + " bytes");

  HttpRequest request;
  const std::string_view head(buffer_.data(), header_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line = head.substr(0, line_end);

  // Request line: METHOD SP request-target SP HTTP-version.
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 || sp2 + 1 >= request_line.size() ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos)
    return fail(400, "malformed request line '" + std::string(request_line) +
                         "'");
  request.method = std::string(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0")
    return fail(505, "unsupported version '" + request.version + "'");
  if (request.target.empty() || request.target.front() != '/')
    return fail(400, "request target must be absolute: '" + request.target +
                         "'");

  // Header fields.
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view line = head.substr(pos, end - pos);
    pos = end + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return fail(400, "malformed header field '" + std::string(line) + "'");
    std::string name(trim(line.substr(0, colon)));
    if (name.size() != colon)  // whitespace before ':' is invalid framing
      return fail(400, "malformed header field '" + std::string(line) + "'");
    request.headers.emplace_back(std::move(name),
                                 trim(line.substr(colon + 1)));
  }

  if (request.header("Transfer-Encoding") != nullptr)
    return fail(501, "Transfer-Encoding is not supported");

  // Body: Content-Length only.
  std::size_t body_length = 0;
  if (const std::string* length = request.header("Content-Length")) {
    char* end = nullptr;
    const std::string text = trim(*length);
    const unsigned long long parsed =
        std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || text.front() == '-' || end == nullptr || *end != '\0')
      return fail(400, "malformed Content-Length '" + *length + "'");
    if (parsed > limits_.max_body_bytes)
      return fail(413, "request body of " + text + " bytes exceeds " +
                           std::to_string(limits_.max_body_bytes) + " bytes");
    body_length = static_cast<std::size_t>(parsed);
  } else if (request.method == "POST" || request.method == "PUT") {
    return fail(411, request.method + " requires Content-Length");
  }

  const std::size_t total = header_end + 4 + body_length;
  if (buffer_.size() < total) return Status::kNeedMore;

  request.body = buffer_.substr(header_end + 4, body_length);
  buffer_.erase(0, total);
  *out = std::move(request);
  return Status::kComplete;
}

}  // namespace wfr::util

#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace wfr::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  std::fprintf(stderr, "[wfr %s] %s\n", level_name(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace wfr::util

#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace wfr::util {

namespace {

using Clock = std::chrono::steady_clock;

LogLevel startup_level() {
  const char* env = std::getenv("WFR_LOG_LEVEL");
  if (env != nullptr) {
    if (std::optional<LogLevel> parsed = parse_log_level(env)) return *parsed;
    std::fprintf(stderr, "[wfr WARN +0.000s] ignoring unknown WFR_LOG_LEVEL '%s'\n",
                 env);
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{startup_level()};
std::mutex g_emit_mutex;

Clock::time_point log_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

char ascii_lower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(ascii_lower(c));
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2")
    return LogLevel::kWarn;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::kOff;
  return std::nullopt;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

double log_uptime_seconds() {
  return std::chrono::duration<double>(Clock::now() - log_epoch()).count();
}

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) return;
  // Format the whole line first so the emit below is one fwrite; the mutex
  // keeps lines from concurrent threads whole even on platforms where
  // large stderr writes are not atomic.
  char prefix[64];
  const int n = std::snprintf(prefix, sizeof(prefix), "[wfr %s +%.3fs] ",
                              log_level_name(level), log_uptime_seconds());
  std::string line;
  line.reserve(static_cast<std::size_t>(n) + message.size() + 1);
  line.append(prefix, static_cast<std::size_t>(n));
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> guard(g_emit_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void log_debug(const std::string& message) { log(LogLevel::kDebug, message); }
void log_info(const std::string& message) { log(LogLevel::kInfo, message); }
void log_warn(const std::string& message) { log(LogLevel::kWarn, message); }
void log_error(const std::string& message) { log(LogLevel::kError, message); }

}  // namespace wfr::util

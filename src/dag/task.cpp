#include "dag/task.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::dag {

bool ResourceDemand::is_zero() const {
  return external_in_bytes == 0.0 && fs_read_bytes == 0.0 &&
         fs_write_bytes == 0.0 && network_bytes == 0.0 &&
         flops_per_node == 0.0 && dram_bytes_per_node == 0.0 &&
         hbm_bytes_per_node == 0.0 && pcie_bytes_per_node == 0.0 &&
         overhead_seconds == 0.0;
}

ResourceDemand ResourceDemand::operator+(const ResourceDemand& other) const {
  ResourceDemand out = *this;
  out.external_in_bytes += other.external_in_bytes;
  out.fs_read_bytes += other.fs_read_bytes;
  out.fs_write_bytes += other.fs_write_bytes;
  out.network_bytes += other.network_bytes;
  out.flops_per_node += other.flops_per_node;
  out.dram_bytes_per_node += other.dram_bytes_per_node;
  out.hbm_bytes_per_node += other.hbm_bytes_per_node;
  out.pcie_bytes_per_node += other.pcie_bytes_per_node;
  out.overhead_seconds += other.overhead_seconds;
  return out;
}

ResourceDemand ResourceDemand::scaled(double factor) const {
  ResourceDemand out = *this;
  out.external_in_bytes *= factor;
  out.fs_read_bytes *= factor;
  out.fs_write_bytes *= factor;
  out.network_bytes *= factor;
  out.flops_per_node *= factor;
  out.dram_bytes_per_node *= factor;
  out.hbm_bytes_per_node *= factor;
  out.pcie_bytes_per_node *= factor;
  out.overhead_seconds *= factor;
  return out;
}

void TaskSpec::validate() const {
  util::require(!name.empty(), "task name must be non-empty");
  util::require(nodes >= 1,
                util::format("task '%s': nodes must be >= 1 (got %d)",
                             name.c_str(), nodes));
  auto non_negative = [&](double v, const char* field) {
    util::require(v >= 0.0, util::format("task '%s': %s must be >= 0",
                                         name.c_str(), field));
  };
  non_negative(demand.external_in_bytes, "external_in_bytes");
  non_negative(demand.fs_read_bytes, "fs_read_bytes");
  non_negative(demand.fs_write_bytes, "fs_write_bytes");
  non_negative(demand.network_bytes, "network_bytes");
  non_negative(demand.flops_per_node, "flops_per_node");
  non_negative(demand.dram_bytes_per_node, "dram_bytes_per_node");
  non_negative(demand.hbm_bytes_per_node, "hbm_bytes_per_node");
  non_negative(demand.pcie_bytes_per_node, "pcie_bytes_per_node");
  non_negative(demand.overhead_seconds, "overhead_seconds");
}

}  // namespace wfr::dag

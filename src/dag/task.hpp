#pragma once
// Task specification: one node-allocatable unit of work inside a workflow.
// Matching the paper's definition (Section III), a task may be a large MPI
// application or a small script; what matters to the model is its resource
// demands per channel.

#include <cstdint>
#include <string>

namespace wfr::dag {

/// Opaque task identifier, dense in [0, task_count).
using TaskId = std::uint32_t;

inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

/// Per-task resource demand volumes.  "Per node" quantities follow the
/// paper's node-level characterization (total volume divided by the number
/// of nodes the task runs on); system-level quantities are totals for the
/// task across the whole system.
struct ResourceDemand {
  // --- System-level volumes (shared resources) ---------------------------
  /// Bytes loaded into the system from external storage (e.g. a detector
  /// at a light source, or a DTN transfer).
  double external_in_bytes = 0.0;
  /// Bytes read from the shared parallel filesystem.
  double fs_read_bytes = 0.0;
  /// Bytes written to the shared parallel filesystem.
  double fs_write_bytes = 0.0;
  /// Total MPI traffic the task puts on the system network.
  double network_bytes = 0.0;

  // --- Node-level volumes (per allocated node) ----------------------------
  /// Floating-point operations per node.
  double flops_per_node = 0.0;
  /// CPU DRAM traffic per node ("CPU Bytes" in the paper's Table I).
  double dram_bytes_per_node = 0.0;
  /// GPU HBM traffic per node.
  double hbm_bytes_per_node = 0.0;
  /// Host<->device PCIe traffic per node.
  double pcie_bytes_per_node = 0.0;

  // --- Fixed costs ---------------------------------------------------------
  /// Serial control-flow overhead not modeled by any bandwidth channel
  /// (bash, srun launch, python library loading, ...).
  double overhead_seconds = 0.0;

  /// Sum of the two filesystem directions.
  double fs_bytes() const { return fs_read_bytes + fs_write_bytes; }

  /// True when every volume and the overhead is zero.
  bool is_zero() const;

  /// Element-wise sum of demands.
  ResourceDemand operator+(const ResourceDemand& other) const;

  /// Scales every volume (and the overhead) by `factor`.
  ResourceDemand scaled(double factor) const;
};

/// Specification of one workflow task.
struct TaskSpec {
  std::string name;
  /// Free-form kind tag ("analysis", "merge", "train", "tune", ...).
  std::string kind;
  /// Number of compute nodes the task occupies while running (>= 1).
  int nodes = 1;
  /// Resource demand volumes.
  ResourceDemand demand;
  /// When >= 0, a measured/reported wall-clock duration that overrides the
  /// demand-derived estimate (the paper's "Measured"/"reported" rows of
  /// Table I).  Negative means "derive from demand".
  double fixed_duration_seconds = -1.0;

  /// Validates invariants; throws InvalidArgument on violation.
  void validate() const;
};

}  // namespace wfr::dag

#include "dag/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::dag {

TaskId WorkflowGraph::add_task(TaskSpec spec) {
  spec.validate();
  util::require(find_task_or_invalid(spec.name) == kInvalidTask,
                "duplicate task name '" + spec.name + "'");
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(std::move(spec));
  successors_.emplace_back();
  predecessors_.emplace_back();
  return id;
}

void WorkflowGraph::add_dependency(TaskId producer, TaskId consumer) {
  check_id(producer);
  check_id(consumer);
  util::require(producer != consumer, "self-dependency on task '" +
                                          tasks_[producer].name + "'");
  auto& succ = successors_[producer];
  if (std::find(succ.begin(), succ.end(), consumer) != succ.end()) return;
  succ.push_back(consumer);
  predecessors_[consumer].push_back(producer);
}

const TaskSpec& WorkflowGraph::task(TaskId id) const {
  check_id(id);
  return tasks_[id];
}

TaskSpec& WorkflowGraph::task(TaskId id) {
  check_id(id);
  return tasks_[id];
}

TaskId WorkflowGraph::find_task(std::string_view name) const {
  const TaskId id = find_task_or_invalid(name);
  if (id == kInvalidTask)
    throw util::NotFound("no task named '" + std::string(name) + "'");
  return id;
}

TaskId WorkflowGraph::find_task_or_invalid(std::string_view name) const {
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    if (tasks_[i].name == name) return static_cast<TaskId>(i);
  return kInvalidTask;
}

std::span<const TaskId> WorkflowGraph::successors(TaskId id) const {
  check_id(id);
  return successors_[id];
}

std::span<const TaskId> WorkflowGraph::predecessors(TaskId id) const {
  check_id(id);
  return predecessors_[id];
}

void WorkflowGraph::validate() const {
  // Kahn's algorithm; a cycle exists iff not all tasks are output.
  if (topological_order().size() != tasks_.size())
    throw util::InvalidArgument("workflow graph '" + name_ +
                                "' contains a cycle");
}

std::vector<TaskId> WorkflowGraph::topological_order() const {
  std::vector<int> in_degree(tasks_.size(), 0);
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    in_degree[i] = static_cast<int>(predecessors_[i].size());

  // A plain queue keeps insertion order among simultaneously-ready tasks,
  // making the order stable and test-friendly.
  std::queue<TaskId> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    if (in_degree[i] == 0) ready.push(static_cast<TaskId>(i));

  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (TaskId next : successors_[id]) {
      if (--in_degree[next] == 0) ready.push(next);
    }
  }
  return order;
}

std::vector<int> WorkflowGraph::levels() const {
  validate();
  std::vector<int> level(tasks_.size(), 0);
  for (TaskId id : topological_order()) {
    for (TaskId pred : predecessors_[id])
      level[id] = std::max(level[id], level[pred] + 1);
  }
  return level;
}

int WorkflowGraph::level_count() const {
  if (tasks_.empty()) return 0;
  const std::vector<int> level = levels();
  return 1 + *std::max_element(level.begin(), level.end());
}

std::vector<int> WorkflowGraph::level_widths() const {
  std::vector<int> widths(static_cast<std::size_t>(level_count()), 0);
  for (int l : levels()) ++widths[static_cast<std::size_t>(l)];
  return widths;
}

int WorkflowGraph::max_parallel_tasks() const {
  const std::vector<int> widths = level_widths();
  return widths.empty() ? 0 : *std::max_element(widths.begin(), widths.end());
}

CriticalPath WorkflowGraph::critical_path(
    std::span<const double> durations) const {
  validate();
  CriticalPath result;
  if (tasks_.empty()) return result;
  util::require(durations.empty() || durations.size() == tasks_.size(),
                "critical_path durations must match task count");
  auto duration = [&](TaskId id) {
    return durations.empty() ? 1.0 : durations[id];
  };

  std::vector<double> finish(tasks_.size(), 0.0);
  std::vector<TaskId> best_pred(tasks_.size(), kInvalidTask);
  for (TaskId id : topological_order()) {
    double start = 0.0;
    for (TaskId pred : predecessors_[id]) {
      if (finish[pred] > start) {
        start = finish[pred];
        best_pred[id] = pred;
      }
    }
    finish[id] = start + duration(id);
  }

  TaskId tail = 0;
  for (std::size_t i = 1; i < tasks_.size(); ++i)
    if (finish[i] > finish[tail]) tail = static_cast<TaskId>(i);

  result.length_seconds = finish[tail];
  for (TaskId id = tail; id != kInvalidTask; id = best_pred[id])
    result.tasks.push_back(id);
  std::reverse(result.tasks.begin(), result.tasks.end());
  return result;
}

ResourceDemand WorkflowGraph::total_demand() const {
  ResourceDemand total;
  for (const TaskSpec& t : tasks_) total = total + t.demand;
  return total;
}

int WorkflowGraph::peak_nodes_by_level() const {
  const std::vector<int> level = levels();
  std::vector<int> nodes_at(static_cast<std::size_t>(level_count()), 0);
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    nodes_at[static_cast<std::size_t>(level[i])] += tasks_[i].nodes;
  return nodes_at.empty() ? 0
                          : *std::max_element(nodes_at.begin(), nodes_at.end());
}

void WorkflowGraph::check_id(TaskId id) const {
  if (id >= tasks_.size())
    throw util::NotFound(util::format("task id %u out of range (%zu tasks)",
                                      id, tasks_.size()));
}

WorkflowGraph make_fork_join(std::string name, const TaskSpec& parallel_task,
                             int width, const TaskSpec& join_task) {
  util::require(width >= 1, "make_fork_join width must be >= 1");
  WorkflowGraph g(std::move(name));
  std::vector<TaskId> branch_ids;
  branch_ids.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    TaskSpec spec = parallel_task;
    spec.name = util::format("%s_%d", parallel_task.name.c_str(), i);
    branch_ids.push_back(g.add_task(std::move(spec)));
  }
  const TaskId join = g.add_task(join_task);
  for (TaskId b : branch_ids) g.add_dependency(b, join);
  return g;
}

WorkflowGraph make_chain(std::string name, const TaskSpec& stage_task,
                         int count) {
  util::require(count >= 1, "make_chain count must be >= 1");
  WorkflowGraph g(std::move(name));
  TaskId prev = kInvalidTask;
  for (int i = 0; i < count; ++i) {
    TaskSpec spec = stage_task;
    spec.name = util::format("%s_%d", stage_task.name.c_str(), i);
    const TaskId id = g.add_task(std::move(spec));
    if (prev != kInvalidTask) g.add_dependency(prev, id);
    prev = id;
  }
  return g;
}

}  // namespace wfr::dag

#pragma once
// A deterministic list scheduler: places workflow tasks on a fixed pool of
// nodes as soon as their dependencies are met and enough nodes are free.
// Produces a Gantt timeline (Fig. 7d) and the makespan used on the Workflow
// Roofline y-axis.  Contention-free; the discrete-event simulator in
// src/sim refines these times under shared-resource contention.

#include <vector>

#include "dag/graph.hpp"

namespace wfr::dag {

/// One scheduled task interval.
struct ScheduledTask {
  TaskId task = kInvalidTask;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  /// First node index of the contiguous allocation.
  int first_node = 0;
  /// Number of nodes allocated.
  int nodes = 0;

  double duration() const { return end_seconds - start_seconds; }
};

/// The complete schedule of a workflow.
struct Schedule {
  std::vector<ScheduledTask> entries;  // indexed by TaskId
  double makespan_seconds = 0.0;
  /// Peak number of nodes in use at any instant.
  int peak_nodes_used = 0;
  /// Maximum number of tasks running concurrently at any instant.
  int peak_concurrent_tasks = 0;

  /// Node-seconds of useful allocation divided by pool-size * makespan.
  /// 0 when the makespan is 0.
  double node_utilization(int pool_nodes) const;

  /// Tasks sorted by start time (ties by id); convenient for rendering.
  std::vector<ScheduledTask> sorted_by_start() const;
};

/// Options controlling list scheduling.
struct ScheduleOptions {
  /// Size of the node pool.  Tasks requiring more nodes than this throw.
  int pool_nodes = 1;
  /// When true, among ready tasks the one with the longest duration is
  /// placed first (LPT); otherwise insertion (FIFO) order is used.
  bool longest_task_first = false;
};

/// Schedules `graph` with per-task `durations` (seconds, indexed by
/// TaskId).  Throws InvalidArgument when durations are negative, sizes
/// mismatch, or any task needs more nodes than the pool provides.
Schedule schedule_workflow(const WorkflowGraph& graph,
                           std::span<const double> durations,
                           const ScheduleOptions& options);

}  // namespace wfr::dag

#include "dag/wdl.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace wfr::dag {

namespace {

// Reads a quantity member that may be a raw number (base units) or a unit
// string parsed by `parse_text`.
double read_quantity(const util::Json& obj, std::string_view key,
                     double (*parse_text)(std::string_view)) {
  const util::Json* v = obj.as_object().find(key);
  if (v == nullptr) return 0.0;
  if (v->is_number()) return v->as_number();
  if (v->is_string()) return parse_text(v->as_string());
  throw util::ParseError("demand member '" + std::string(key) +
                         "' must be a number or unit string");
}

ResourceDemand read_demand(const util::Json& d) {
  ResourceDemand out;
  out.external_in_bytes = read_quantity(d, "external_in", util::parse_bytes);
  out.fs_read_bytes = read_quantity(d, "fs_read", util::parse_bytes);
  out.fs_write_bytes = read_quantity(d, "fs_write", util::parse_bytes);
  out.network_bytes = read_quantity(d, "network", util::parse_bytes);
  out.flops_per_node = read_quantity(d, "flops_per_node", util::parse_flops);
  out.dram_bytes_per_node = read_quantity(d, "dram_per_node", util::parse_bytes);
  out.hbm_bytes_per_node = read_quantity(d, "hbm_per_node", util::parse_bytes);
  out.pcie_bytes_per_node = read_quantity(d, "pcie_per_node", util::parse_bytes);
  out.overhead_seconds = read_quantity(d, "overhead", util::parse_seconds);
  // Reject unknown keys so that typos do not silently drop demands.
  static constexpr std::string_view kKnown[] = {
      "external_in", "fs_read", "fs_write", "network", "flops_per_node",
      "dram_per_node", "hbm_per_node", "pcie_per_node", "overhead"};
  for (const auto& [key, value] : d.as_object().members()) {
    bool known = false;
    for (std::string_view k : kKnown) known = known || key == k;
    if (!known)
      throw util::ParseError("unknown demand member '" + key + "'");
  }
  return out;
}

}  // namespace

WorkflowGraph load_workflow(std::string_view json_text) {
  return load_workflow_json(util::Json::parse(json_text));
}

WorkflowGraph load_workflow_json(const util::Json& json) {
  const util::JsonObject& root = json.as_object();
  WorkflowGraph graph(json.string_or("name", "workflow"));

  const util::Json& tasks = root.at("tasks");
  // First pass: create tasks so that forward dependency references work.
  for (const util::Json& t : tasks.as_array()) {
    TaskSpec spec;
    spec.name = t.at("name").as_string();
    spec.kind = t.string_or("kind", "");
    spec.nodes = static_cast<int>(
        t.as_object().contains("nodes") ? t.at("nodes").as_int() : 1);
    if (const util::Json* d = t.as_object().find("demand"))
      spec.demand = read_demand(*d);
    if (const util::Json* fd = t.as_object().find("fixed_duration")) {
      spec.fixed_duration_seconds = fd->is_number()
                                        ? fd->as_number()
                                        : util::parse_seconds(fd->as_string());
    }
    graph.add_task(std::move(spec));
  }
  // Second pass: wire dependencies.
  for (const util::Json& t : tasks.as_array()) {
    const TaskId consumer = graph.find_task(t.at("name").as_string());
    if (const util::Json* deps = t.as_object().find("depends_on")) {
      for (const util::Json& dep : deps->as_array())
        graph.add_dependency(graph.find_task(dep.as_string()), consumer);
    }
  }
  graph.validate();
  return graph;
}

util::Json save_workflow(const WorkflowGraph& graph) {
  util::JsonObject root;
  root.set("name", util::Json(graph.name()));
  util::JsonArray tasks;
  for (TaskId id = 0; id < graph.task_count(); ++id) {
    const TaskSpec& spec = graph.task(id);
    util::JsonObject t;
    t.set("name", util::Json(spec.name));
    if (!spec.kind.empty()) t.set("kind", util::Json(spec.kind));
    if (spec.nodes != 1) t.set("nodes", util::Json(spec.nodes));
    if (!graph.predecessors(id).empty()) {
      util::JsonArray deps;
      for (TaskId pred : graph.predecessors(id))
        deps.emplace_back(graph.task(pred).name);
      t.set("depends_on", util::Json(std::move(deps)));
    }
    if (spec.fixed_duration_seconds >= 0.0)
      t.set("fixed_duration", util::Json(spec.fixed_duration_seconds));
    if (!spec.demand.is_zero()) {
      util::JsonObject d;
      const ResourceDemand& dm = spec.demand;
      auto set_nonzero = [&d](const char* key, double v) {
        if (v != 0.0) d.set(key, util::Json(v));
      };
      set_nonzero("external_in", dm.external_in_bytes);
      set_nonzero("fs_read", dm.fs_read_bytes);
      set_nonzero("fs_write", dm.fs_write_bytes);
      set_nonzero("network", dm.network_bytes);
      set_nonzero("flops_per_node", dm.flops_per_node);
      set_nonzero("dram_per_node", dm.dram_bytes_per_node);
      set_nonzero("hbm_per_node", dm.hbm_bytes_per_node);
      set_nonzero("pcie_per_node", dm.pcie_bytes_per_node);
      set_nonzero("overhead", dm.overhead_seconds);
      t.set("demand", util::Json(std::move(d)));
    }
    tasks.emplace_back(std::move(t));
  }
  root.set("tasks", util::Json(std::move(tasks)));
  return util::Json(std::move(root));
}

std::string save_workflow_text(const WorkflowGraph& graph) {
  return save_workflow(graph).pretty();
}

}  // namespace wfr::dag

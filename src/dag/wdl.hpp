#pragma once
// JSON workflow-description load/save.  This is the library's stand-in for
// the workflow descriptions the paper obtains from sbatch scripts and WDL:
// a compact, human-writable file listing tasks, their resource demands, and
// dependencies.
//
// Format:
//   {
//     "name": "lcls",
//     "tasks": [
//       {
//         "name": "analysis_0",
//         "kind": "analysis",            // optional
//         "nodes": 16,                   // optional, default 1
//         "depends_on": ["stage_in"],    // optional
//         "fixed_duration": "17 min",    // optional; or a number of seconds
//         "demand": {                    // optional; all members optional
//           "external_in": "1 TB",       // unit string or raw byte count
//           "fs_read": "70 GB",
//           "fs_write": "1 GB",
//           "network": "168 GB",
//           "flops_per_node": "69 PFLOP",
//           "dram_per_node": "32 GB",
//           "hbm_per_node": "6.4 GB",
//           "pcie_per_node": "80 GB",
//           "overhead": "2 s"
//         }
//       }, ...
//     ]
//   }

#include <string>
#include <string_view>

#include "dag/graph.hpp"
#include "util/json.hpp"

namespace wfr::dag {

/// Parses a workflow description from JSON text.  Throws ParseError /
/// InvalidArgument with actionable messages on malformed input.
WorkflowGraph load_workflow(std::string_view json_text);

/// Parses a workflow description from an already-parsed JSON value.
WorkflowGraph load_workflow_json(const util::Json& json);

/// Serializes `graph` to a JSON value that load_workflow round-trips.
util::Json save_workflow(const WorkflowGraph& graph);

/// Serializes `graph` to pretty-printed JSON text.
std::string save_workflow_text(const WorkflowGraph& graph);

}  // namespace wfr::dag

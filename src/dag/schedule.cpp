#include "dag/schedule.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::dag {

double Schedule::node_utilization(int pool_nodes) const {
  if (makespan_seconds <= 0.0 || pool_nodes <= 0) return 0.0;
  double node_seconds = 0.0;
  for (const ScheduledTask& t : entries)
    node_seconds += t.duration() * static_cast<double>(t.nodes);
  return node_seconds / (makespan_seconds * static_cast<double>(pool_nodes));
}

std::vector<ScheduledTask> Schedule::sorted_by_start() const {
  std::vector<ScheduledTask> out = entries;
  std::sort(out.begin(), out.end(),
            [](const ScheduledTask& a, const ScheduledTask& b) {
              if (a.start_seconds != b.start_seconds)
                return a.start_seconds < b.start_seconds;
              return a.task < b.task;
            });
  return out;
}

namespace {

/// Tracks which nodes of the pool are free and hands out allocations.
class NodePool {
 public:
  explicit NodePool(int size) : free_(static_cast<std::size_t>(size), true) {}

  int free_count() const {
    return static_cast<int>(std::count(free_.begin(), free_.end(), true));
  }

  /// Allocates `count` nodes, preferring the lowest-indexed contiguous run;
  /// falls back to the lowest free nodes when fragmented.  Returns the
  /// first node index.  Requires free_count() >= count.
  int allocate(int count, std::vector<int>* taken) {
    taken->clear();
    // First-fit contiguous.
    int run = 0;
    for (std::size_t i = 0; i < free_.size(); ++i) {
      run = free_[i] ? run + 1 : 0;
      if (run == count) {
        const std::size_t start = i + 1 - static_cast<std::size_t>(count);
        for (std::size_t j = start; j <= i; ++j) {
          free_[j] = false;
          taken->push_back(static_cast<int>(j));
        }
        return static_cast<int>(start);
      }
    }
    // Fragmented: take the lowest free nodes.
    for (std::size_t i = 0; i < free_.size() && static_cast<int>(taken->size()) < count; ++i) {
      if (free_[i]) {
        free_[i] = false;
        taken->push_back(static_cast<int>(i));
      }
    }
    util::ensure(static_cast<int>(taken->size()) == count,
                 "NodePool::allocate called without enough free nodes");
    return taken->front();
  }

  void release(const std::vector<int>& nodes) {
    for (int n : nodes) free_[static_cast<std::size_t>(n)] = true;
  }

 private:
  std::vector<bool> free_;
};

struct RunningTask {
  double end = 0.0;
  TaskId task = kInvalidTask;
  bool operator>(const RunningTask& other) const { return end > other.end; }
};

}  // namespace

Schedule schedule_workflow(const WorkflowGraph& graph,
                           std::span<const double> durations,
                           const ScheduleOptions& options) {
  graph.validate();
  util::require(durations.size() == graph.task_count(),
                "schedule_workflow durations must match task count");
  util::require(options.pool_nodes >= 1, "pool_nodes must be >= 1");
  for (std::size_t i = 0; i < durations.size(); ++i) {
    util::require(durations[i] >= 0.0, "task durations must be >= 0");
    util::require(graph.task(static_cast<TaskId>(i)).nodes <= options.pool_nodes,
                  util::format("task '%s' needs %d nodes but the pool has %d",
                               graph.task(static_cast<TaskId>(i)).name.c_str(),
                               graph.task(static_cast<TaskId>(i)).nodes,
                               options.pool_nodes));
  }

  Schedule schedule;
  schedule.entries.resize(graph.task_count());
  if (graph.task_count() == 0) return schedule;

  std::vector<int> waiting_deps(graph.task_count());
  for (std::size_t i = 0; i < graph.task_count(); ++i)
    waiting_deps[i] =
        static_cast<int>(graph.predecessors(static_cast<TaskId>(i)).size());

  std::vector<TaskId> ready;
  for (std::size_t i = 0; i < graph.task_count(); ++i)
    if (waiting_deps[i] == 0) ready.push_back(static_cast<TaskId>(i));

  auto order_ready = [&] {
    if (options.longest_task_first) {
      std::stable_sort(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
        return durations[a] > durations[b];
      });
    }
  };
  order_ready();

  NodePool pool(options.pool_nodes);
  std::priority_queue<RunningTask, std::vector<RunningTask>,
                      std::greater<RunningTask>>
      running;
  std::vector<std::vector<int>> allocation(graph.task_count());
  double now = 0.0;
  std::size_t started = 0;
  int tasks_running = 0;

  while (started < graph.task_count() || !running.empty()) {
    // Start every ready task that fits, in priority order.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t r = 0; r < ready.size(); ++r) {
        const TaskId id = ready[r];
        const int need = graph.task(id).nodes;
        if (pool.free_count() < need) continue;
        const int first = pool.allocate(need, &allocation[id]);
        ScheduledTask& entry = schedule.entries[id];
        entry.task = id;
        entry.start_seconds = now;
        entry.end_seconds = now + durations[id];
        entry.first_node = first;
        entry.nodes = need;
        running.push(RunningTask{entry.end_seconds, id});
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(r));
        ++started;
        ++tasks_running;
        schedule.peak_concurrent_tasks =
            std::max(schedule.peak_concurrent_tasks, tasks_running);
        schedule.peak_nodes_used = std::max(
            schedule.peak_nodes_used, options.pool_nodes - pool.free_count());
        progressed = true;
        break;  // re-scan: the ready list may be ordered and pool changed
      }
    }

    if (running.empty()) {
      util::ensure(started == graph.task_count(),
                   "scheduler stalled with unstarted tasks");
      break;
    }

    // Advance to the earliest completion; release everything ending then.
    now = running.top().end;
    while (!running.empty() && running.top().end <= now) {
      const TaskId done = running.top().task;
      running.pop();
      --tasks_running;
      pool.release(allocation[done]);
      allocation[done].clear();
      for (TaskId next : graph.successors(done)) {
        if (--waiting_deps[next] == 0) ready.push_back(next);
      }
    }
    order_ready();
    schedule.makespan_seconds = std::max(schedule.makespan_seconds, now);
  }

  return schedule;
}

}  // namespace wfr::dag

#pragma once
// Workflow task graph (DAG) with the structural queries the Workflow
// Roofline model needs: levels, level widths (parallel task counts),
// critical path, and concurrency profile.

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dag/task.hpp"

namespace wfr::dag {

/// Result of a critical-path query.
struct CriticalPath {
  /// Task ids on the path, in execution order.
  std::vector<TaskId> tasks;
  /// Sum of the durations of the tasks on the path.
  double length_seconds = 0.0;
};

/// A directed acyclic graph of workflow tasks.
///
/// Edges run from a producer task to its dependent consumer.  Validation is
/// lazy: structural mutators are cheap, and analysis entry points call
/// validate() (cycle detection) on first use after a mutation.
class WorkflowGraph {
 public:
  WorkflowGraph() = default;
  explicit WorkflowGraph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a task and returns its id.  Throws when `spec` is invalid or a
  /// task with the same name already exists.
  TaskId add_task(TaskSpec spec);

  /// Declares that `consumer` cannot start until `producer` finishes.
  /// Duplicate edges are ignored.  Throws on self-edges / unknown ids.
  void add_dependency(TaskId producer, TaskId consumer);

  std::size_t task_count() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }

  const TaskSpec& task(TaskId id) const;
  TaskSpec& task(TaskId id);

  /// Looks up a task by name; throws NotFound when absent.
  TaskId find_task(std::string_view name) const;
  /// Looks up a task by name; returns kInvalidTask when absent.
  TaskId find_task_or_invalid(std::string_view name) const;

  /// Direct successors / predecessors of `id`.
  std::span<const TaskId> successors(TaskId id) const;
  std::span<const TaskId> predecessors(TaskId id) const;

  /// Throws InvalidArgument when the graph contains a cycle.
  void validate() const;

  /// Task ids in a topological order (stable w.r.t. insertion order).
  std::vector<TaskId> topological_order() const;

  /// Level of each task: sources are level 0, and each task's level is
  /// 1 + max(level of predecessors).  This matches the paper's "level"
  /// notion in the LCLS skeleton (Fig. 4).
  std::vector<int> levels() const;

  /// Number of levels (0 for an empty graph).  The paper calls this the
  /// critical path *length* in tasks when all durations are equal.
  int level_count() const;

  /// Number of tasks at each level.
  std::vector<int> level_widths() const;

  /// Maximum level width: the paper's "number of parallel tasks" for a
  /// workflow whose tasks at a level are mutually independent.
  int max_parallel_tasks() const;

  /// Critical path with per-task `durations` (seconds, one per task).
  /// When `durations` is empty, each task counts 1 (path length in tasks).
  CriticalPath critical_path(std::span<const double> durations = {}) const;

  /// Sum of demands over all tasks (system-level totals; node-level fields
  /// sum the per-node volumes which is only meaningful for uniform tasks).
  ResourceDemand total_demand() const;

  /// Maximum nodes() over tasks that may run concurrently at one level.
  /// Used to size cluster allocations.
  int peak_nodes_by_level() const;

 private:
  std::string name_;
  std::vector<TaskSpec> tasks_;
  std::vector<std::vector<TaskId>> successors_;
  std::vector<std::vector<TaskId>> predecessors_;

  void check_id(TaskId id) const;
};

/// Builds a fork-join graph: `width` independent tasks from the template
/// `parallel_task`, all feeding one `join_task`.  Used for LCLS-style
/// skeletons and tests.
WorkflowGraph make_fork_join(std::string name, const TaskSpec& parallel_task,
                             int width, const TaskSpec& join_task);

/// Builds a linear chain of `count` tasks from `stage_task`, renaming each
/// stage with an index suffix.
WorkflowGraph make_chain(std::string name, const TaskSpec& stage_task,
                         int count);

}  // namespace wfr::dag

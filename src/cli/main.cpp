// wfr — the Workflow Roofline command-line tool.
//
// Subcommands:
//   wfr analyze  --system <spec.json|preset> --workflow <wf.json>
//                [--target <seconds>] [--svg <out.svg>] [--ascii]
//                [--node-roofline <out.svg>]
//       Characterize a workflow description, run it through the
//       simulator, print the model report and optimization advice, and
//       optionally render the roofline.  --node-roofline drills down into
//       the traditional node Roofline when the workflow is node-bound.
//   wfr model    --system <spec.json|preset> --characterization <c.json>
//                [--svg <out.svg>] [--ascii]
//       Build a roofline directly from a characterization file (no
//       execution) — the "analyze without traces" path.
//   wfr simulate --system <spec.json|preset> --workflow <wf.json>
//                [--gantt <out.svg>] [--json <trace.json>]
//       Execute the workflow on the simulator and print the trace.
//   wfr run      --system <spec.json|preset> --workflow <wf.json>
//                [--chrome-trace <out.json>] [--metrics <out.json>]
//                [--svg <out.svg>] [--gantt <out.svg>]
//       Execute the workflow with full observation: per-phase spans and
//       per-resource counter tracks export as a Chrome/Perfetto
//       trace_event file (open at https://ui.perfetto.dev), engine and
//       runner self-metrics plus p50/p95 shared-resource utilization
//       export as a metrics snapshot, and --svg renders the roofline
//       with the *measured* operating point placed next to the analytic
//       ceilings.
//   wfr sweep    --system <spec.json|preset>
//                (--characterization <c.json> | --workflow <wf.json>)
//                [--param name=v1,v2,...]... [--jobs <n>] [--ndjson <out>]
//                [--svg <out.svg>] [--metrics <out.json>] [--cache-cap <n>]
//                [--stream] [--reorder-window <n>]
//                [--checkpoint <ckpt.json>] [--checkpoint-every <rows>]
//                [--resume <ckpt.json>]
//                [--shards <n> (--spawn | --shard-id <i>)]
//                [--shard-mode stride|block]
//       Fan a what-if parameter grid (cross product of every --param
//       axis) across the scenario thread pool and tabulate each point's
//       parallelism wall, attainable throughput, and binding ceiling.
//       Emits one NDJSON line per point; --svg renders a multi-curve
//       roofline overlaying every scenario's binding ceiling.  --jobs
//       (then WFR_JOBS, then the hardware) sets the worker count; output
//       is bit-for-bit identical for any job count.  --stream emits rows
//       as they complete (deterministic order, flat RSS — the
//       campaign-scale path); --checkpoint/--resume persist and pick up
//       progress so a killed sweep re-assembles byte-identically.
//       --cache-cap bounds the memo cache (LRU beyond it).  --shards N
//       splits the grid deterministically across N worker processes:
//       --spawn forks the workers, retries a failed shard once, and
//       merges their part files byte-identically to a single-process
//       stream; --shard-id I runs one worker by hand (e.g. one per
//       host).  --shard-mode picks the row interleaving (stride keeps
//       per-shard progress uniform; block favors the memo cache).
//   wfr import   <instance.json>... [--jobs <n>] [--out-dir <dir>]
//       Convert WfCommons/WfBench workflow instances (wfformat >= 1.4
//       specification/execution layout or the legacy <= 1.3 inline
//       layout) to our workflow description JSON on stdout, ready to pipe
//       into analyze/run/simulate/sweep via --workflow -.  Multiple
//       inputs merge into one union workflow (task names prefixed per
//       instance) unless --out-dir writes one file per input.  Output is
//       byte-identical at any --jobs count.
//   wfr check    [--seeds <n>] [--tolerance <x>] [--jobs <n>]
//                [--base-seed <n>] [--gen rectangular|irregular]
//                [--repro-dir <dir>] [--replay <repro.json>]
//       Differential validation: synthesize seeded scenarios and execute
//       each on the simulator.  The rectangular generator engineers
//       provably tight predictions and asserts
//       throughput/wall/binding/classification agreement; --gen irregular
//       draws fan-out/fan-in/diamond/multi-phase/straggler topologies
//       with heterogeneous volumes, asserts the roofline stays an upper
//       bound, and reports the prediction gap per topology class against
//       documented ceilings.  Divergences exit 1 and dump replayable
//       repro files; --replay re-runs one recorded scenario.  Output is
//       byte-identical at any --jobs count.
//   wfr compare  --system <spec.json|preset> --before <c.json>
//                --after <c.json>
//       Compare two characterizations of the same workflow (before/after
//       an optimization): speedup, dot direction, bound shift, headroom.
//   wfr archetype --kind <ensemble|pipeline|fork-join|map-reduce|
//                         sim-insitu|random> [--size <n>] [--scale <x>]
//                 [--nodes <n>] [--seed <n>]
//       Generate a workflow description for a NERSC-10-style archetype
//       and print it as JSON (pipe to a file to feed analyze/simulate).
//   wfr presets
//       List the built-in system presets.
//
// System presets: perlmutter-gpu, perlmutter-cpu, cori-haswell.

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "archetypes/generators.hpp"
#include "check/differential.hpp"
#include "core/advisor.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/observation.hpp"
#include "core/characterization.hpp"
#include "core/compare.hpp"
#include "core/model.hpp"
#include "core/pipeline.hpp"
#include "core/system_spec.hpp"
#include "dag/wdl.hpp"
#include "exec/checkpoint.hpp"
#include "exec/shard.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "workflows/wfcommons.hpp"
#include "plot/ascii.hpp"
#include "plot/gantt_plot.hpp"
#include "plot/roofline_plot.hpp"
#include "roofline/drilldown.hpp"
#include "serve/app.hpp"
#include "serve/server.hpp"
#include "sim/runner.hpp"
#include "trace/summary.hpp"
#include "util/error.hpp"
#include "util/file.hpp"
#include "util/parse.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace wfr;

// Checked IO (util/file.hpp): reads and writes throw with the path in the
// message instead of silently producing truncated artifacts.
using util::read_file;

// Workflow inputs accept "-" for stdin so `wfr import` pipes straight
// into analyze/run/simulate/sweep.
std::string read_workflow_text(const std::string& arg) {
  if (arg == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  return read_file(arg);
}

core::SystemSpec load_system(const std::string& arg) {
  if (arg == "perlmutter-gpu") return core::SystemSpec::perlmutter_gpu();
  if (arg == "perlmutter-cpu") return core::SystemSpec::perlmutter_cpu();
  if (arg == "cori-haswell") return core::SystemSpec::cori_haswell();
  return core::SystemSpec::from_json(util::Json::parse(read_file(arg)));
}

struct Args {
  std::string command;
  /// Tokens that are not options ("wfr import a.json b.json").
  std::vector<std::string> positional;
  /// Options in command-line order; a flag may repeat (e.g. --param).
  std::vector<std::pair<std::string, std::string>> options;
  bool flag(const std::string& name) const {
    for (const auto& [key, value] : options)
      if (key == name) return true;
    return false;
  }
  std::string get(const std::string& name) const {
    auto value = get_optional(name);
    if (!value) throw util::InvalidArgument("missing required option --" + name);
    return *value;
  }
  std::optional<std::string> get_optional(const std::string& name) const {
    for (const auto& [key, value] : options)
      if (key == name) return value;
    return std::nullopt;
  }
  /// Every value of a repeated option, in command-line order.
  std::vector<std::string> get_all(const std::string& name) const {
    std::vector<std::string> values;
    for (const auto& [key, value] : options)
      if (key == name) values.push_back(value);
    return values;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (!util::starts_with(token, "--")) {
      args.positional.push_back(std::move(token));
      continue;
    }
    token = token.substr(2);
    if (i + 1 < argc && !util::starts_with(argv[i + 1], "--")) {
      args.options.emplace_back(token, argv[++i]);
    } else {
      args.options.emplace_back(token, "");
    }
  }
  return args;
}

// Numeric flags parse through util::parse_*_flag (util/parse.hpp): the
// whole token must be consumed, so typos like "--port 80x" are rejected
// with the flag name and offending text instead of being prefix-parsed.
using util::parse_double_flag;
using util::parse_long_flag;
using util::parse_long_flag_in;
using util::parse_u64_flag;

void print_usage() {
  std::cout <<
      "wfr — Workflow Roofline analysis\n"
      "\n"
      "usage:\n"
      "  wfr analyze  --system <spec|preset> --workflow <wf.json>\n"
      "               [--target <seconds>] [--svg <out.svg>] [--ascii]\n"
      "  wfr model    --system <spec|preset> --characterization <c.json>\n"
      "               [--svg <out.svg>] [--ascii]\n"
      "  wfr simulate --system <spec|preset> --workflow <wf.json>\n"
      "               [--gantt <out.svg>] [--json <trace.json>]\n"
      "  wfr run      --system <spec|preset> --workflow <wf.json>\n"
      "               [--chrome-trace <out.json>] [--metrics <out.json>]\n"
      "               [--svg <out.svg>] [--gantt <out.svg>]\n"
      "  wfr sweep    --system <spec|preset>\n"
      "               (--characterization <c.json> | --workflow <wf.json>)\n"
      "               [--param name=v1,v2,...]... [--jobs <n>]\n"
      "               [--target <seconds>] [--ndjson <out>] [--svg <out.svg>]\n"
      "               [--metrics <out.json>] [--cache-cap <n>]\n"
      "               [--stream] [--reorder-window <n>]\n"
      "               [--checkpoint <ckpt.json>] [--checkpoint-every <rows>]\n"
      "               [--resume <ckpt.json>]\n"
      "               [--shards <n> (--spawn | --shard-id <i>)]\n"
      "               [--shard-mode stride|block]\n"
      "  wfr serve    [--port <n>] [--host <addr>] [--jobs <n>]\n"
      "               [--io-threads <n>] [--idle-timeout <ms>]\n"
      "               [--max-queue <n>] [--max-body <bytes>]\n"
      "               [--sweep-jobs <n>] [--sweep-cache-cap <n>]\n"
      "               [--trace-out <trace.json>] [--trace-cap <spans>]\n"
      "               [--no-trace]\n"
      "  wfr import   <instance.json>... [--jobs <n>] [--out-dir <dir>]\n"
      "  wfr check    [--seeds <n>] [--tolerance <x>] [--jobs <n>]\n"
      "               [--base-seed <n>] [--gen rectangular|irregular]\n"
      "               [--repro-dir <dir>] [--replay <repro.json>]\n"
      "  wfr compare  --system <spec|preset> --before <c.json>\n"
      "               --after <c.json>\n"
      "  wfr archetype --kind <ensemble|pipeline|fork-join|map-reduce|\n"
      "                       sim-insitu|random> [--size <n>] [--scale <x>]\n"
      "                [--nodes <n>] [--seed <n>]\n"
      "  wfr presets\n"
      "\n"
      "presets: perlmutter-gpu, perlmutter-cpu, cori-haswell\n"
      "--workflow accepts - for stdin (e.g. wfr import ... | wfr run\n"
      "  --workflow -); wfr import reads - as stdin too\n"
      "sweep axes: nodes_per_task (factor), efficiency, parallel_tasks,\n"
      "  total_tasks, total_nodes, fs_gbs, external_gbs, nic_gbs, peak_flops\n"
      "jobs resolution: --jobs > WFR_JOBS > hardware concurrency\n";
}

void emit_model_outputs(const core::RooflineModel& model, const Args& args) {
  std::cout << model.report();
  if (!model.dots().empty()) std::cout << "\n" << core::advise(model).to_string();
  if (args.flag("ascii")) std::cout << "\n" << plot::ascii_roofline(model);
  if (auto svg = args.get_optional("svg")) {
    plot::write_roofline_svg(model, *svg);
    std::cout << "wrote " << *svg << "\n";
  }
}

int cmd_analyze(const Args& args) {
  const core::SystemSpec system = load_system(args.get("system"));
  const dag::WorkflowGraph graph =
      dag::load_workflow(read_workflow_text(args.get("workflow")));

  const trace::WorkflowTrace trace =
      sim::run_workflow(graph, system.to_machine());
  core::WorkflowCharacterization c = core::characterize_trace(graph, trace);
  if (auto target = args.get_optional("target"))
    c.target_makespan_seconds = util::parse_seconds(*target);

  core::RooflineModel model = core::build_model(system, c);
  std::cout << trace::describe_trace(trace) << "\n";
  std::cout << core::pipeline_report(graph, trace).to_string() << "\n";
  emit_model_outputs(model, args);

  if (auto node_svg = args.get_optional("node-roofline")) {
    const roofline::DrillDown drill =
        roofline::drill_down(model, graph, trace);
    std::cout << "\n" << drill.reason << "\n";
    if (drill.applicable) {
      std::cout << drill.node_roofline.report();
      drill.node_roofline.write_svg(*node_svg);
      std::cout << "wrote " << *node_svg << "\n";
    }
  }
  return 0;
}

int cmd_model(const Args& args) {
  const core::SystemSpec system = load_system(args.get("system"));
  const core::WorkflowCharacterization c =
      core::WorkflowCharacterization::from_json(
          util::Json::parse(read_file(args.get("characterization"))));
  core::RooflineModel model = core::build_model(system, c);
  emit_model_outputs(model, args);
  return 0;
}

int cmd_simulate(const Args& args) {
  const core::SystemSpec system = load_system(args.get("system"));
  const dag::WorkflowGraph graph =
      dag::load_workflow(read_workflow_text(args.get("workflow")));
  const trace::WorkflowTrace trace =
      sim::run_workflow(graph, system.to_machine());
  std::cout << trace::describe_trace(trace);
  std::cout << "\n" << plot::ascii_gantt(trace);
  if (auto gantt = args.get_optional("gantt")) {
    plot::write_gantt_svg(trace, *gantt);
    std::cout << "wrote " << *gantt << "\n";
  }
  if (auto json = args.get_optional("json")) {
    util::write_file(*json, trace.to_json().pretty() + "\n");
    std::cout << "wrote " << *json << "\n";
  }
  return 0;
}

int cmd_run(const Args& args) {
  const core::SystemSpec system = load_system(args.get("system"));
  const dag::WorkflowGraph graph =
      dag::load_workflow(read_workflow_text(args.get("workflow")));

  obs::Observation observation;
  sim::RunOptions options;
  options.observe = &observation;
  const sim::RunResult result =
      sim::run_workflow_detailed(graph, system.to_machine(), options);

  std::cout << trace::describe_trace(result.trace) << "\n";

  if (!result.resource_summaries.empty()) {
    util::TextTable table({"resource", "capacity", "busy", "delivered",
                           "p50 util", "p95 util", "max util",
                           "peak flows"});
    for (int column = 1; column <= 7; ++column)
      table.set_align(column, util::Align::kRight);
    for (const obs::ResourceSummary& s : result.resource_summaries) {
      table.add_row({s.name, util::format_rate(s.capacity),
                     util::format_seconds(s.busy_seconds),
                     util::format_bytes(s.delivered_bytes),
                     util::format("%.0f%%", 100.0 * s.p50_utilization),
                     util::format("%.0f%%", 100.0 * s.p95_utilization),
                     util::format("%.0f%%", 100.0 * s.max_utilization),
                     std::to_string(s.peak_active_flows)});
    }
    std::cout << "shared-resource utilization (time-weighted):\n"
              << table.str() << "\n";
  }

  const roofline::OperatingPoint point =
      roofline::measured_operating_point(result);
  std::cout << point.summary << "\n";

  if (auto path = args.get_optional("chrome-trace")) {
    obs::write_chrome_trace(*path, result.trace,
                            observation.probe.series());
    std::cout << "wrote " << *path
              << " (open at https://ui.perfetto.dev or chrome://tracing)\n";
  }
  if (auto path = args.get_optional("metrics")) {
    util::write_file(*path, observation.to_json().pretty() + "\n");
    std::cout << "wrote " << *path << "\n";
  }
  if (auto gantt = args.get_optional("gantt")) {
    plot::write_gantt_svg(result.trace, *gantt);
    std::cout << "wrote " << *gantt << "\n";
  }
  if (auto svg = args.get_optional("svg")) {
    core::WorkflowCharacterization c =
        core::characterize_trace(graph, result.trace);
    core::RooflineModel model = core::build_model(system, c);
    model.add_measured_dot();
    roofline::add_operating_point(&model, point);
    plot::write_roofline_svg(model, *svg);
    std::cout << "wrote " << *svg << "\n";
  }
  return 0;
}

// One streaming sweep execution — the whole grid or one shard of it:
// open (or resume into) the NDJSON output, stream rows through
// SweepRunner::stream_lines, and persist flush-then-checkpoint prefix
// ranges.  Shared by the in-process `--stream` path and the forked
// `--spawn` shard workers, so both emit the same bytes by construction.
struct StreamJob {
  exec::ShardSpec shard;
  std::size_t reorder_window = 1024;
  std::string ndjson_path;      ///< empty: no file output
  std::string checkpoint_path;  ///< empty: no checkpointing
  std::string resume_path;      ///< empty: fresh run
  std::size_t checkpoint_every = 4096;
  bool echo_stdout = true;
  /// Throw (after flushing checkpoints written so far) once this many new
  /// rows have been emitted — the crash half of the resume tests.
  std::optional<std::uint64_t> abort_after;
  /// Crash injection for the --spawn retry path: throw *before* emitting
  /// row fail_after, as if the worker died mid-run, leaving whatever the
  /// last checkpoint covered plus possibly-unflushed tail bytes
  /// (WFR_SWEEP_TEST_FAIL_SHARD).
  std::optional<std::uint64_t> fail_after;
};

struct StreamJobStats {
  std::uint64_t new_rows = 0;
  exec::SweepStats sweep;
};

StreamJobStats run_stream_job(const exec::SweepGrid& grid,
                              const exec::SweepOptions& options,
                              const StreamJob& job,
                              obs::MetricsRegistry* metrics) {
  exec::StreamOptions stream;
  stream.reorder_window = job.reorder_window;
  stream.shard = job.shard;
  const std::uint64_t shard_rows = job.shard.rows(grid.size());

  std::uint64_t ndjson_bytes = 0;
  std::ofstream out;
  if (!job.resume_path.empty()) {
    const exec::SweepCheckpoint ckpt = exec::validate_resume(
        job.resume_path, grid.grid_hash(), job.shard, shard_rows,
        job.ndjson_path);
    stream.start_row = static_cast<std::size_t>(ckpt.rows);
    ndjson_bytes = ckpt.ndjson_bytes;
    out.open(job.ndjson_path, std::ios::binary | std::ios::app);
  } else if (!job.ndjson_path.empty()) {
    out.open(job.ndjson_path, std::ios::binary | std::ios::trunc);
  }
  if (!job.ndjson_path.empty() && !out)
    throw util::Error("cannot write '" + job.ndjson_path +
                      "': failed to open for writing");

  exec::SweepRunner runner(options);
  std::uint64_t rows_done = stream.start_row;
  StreamJobStats result;

  // Flush-then-checkpoint: the output file is always at least as long as
  // the checkpoint claims, even if the process dies right after.
  auto save = [&] {
    out.flush();
    if (!out)
      throw util::Error("cannot write '" + job.ndjson_path +
                        "': flush failed");
    exec::save_checkpoint(
        job.checkpoint_path,
        {grid.grid_hash(), rows_done, ndjson_bytes, job.shard});
  };

  runner.stream_lines(
      grid, stream, [&](std::size_t row, std::string_view line) {
        if (job.fail_after && result.new_rows >= *job.fail_after)
          throw util::Error(util::format(
              "injected failure after %llu rows (WFR_SWEEP_TEST_FAIL_SHARD)",
              static_cast<unsigned long long>(result.new_rows)));
        if (job.echo_stdout) std::cout << line;
        if (!job.ndjson_path.empty()) {
          out.write(line.data(), static_cast<std::streamsize>(line.size()));
          if (!out)
            throw util::Error("cannot write '" + job.ndjson_path +
                              "': write failed");
          ndjson_bytes += line.size();
        }
        rows_done = row + 1;
        ++result.new_rows;
        if (!job.checkpoint_path.empty() &&
            rows_done % job.checkpoint_every == 0)
          save();
        if (job.abort_after && result.new_rows >= *job.abort_after)
          throw util::Error(util::format(
              "sweep aborted after %llu rows (--abort-after-rows)",
              static_cast<unsigned long long>(result.new_rows)));
      });

  if (!job.ndjson_path.empty()) {
    out.flush();
    if (!out)
      throw util::Error("cannot write '" + job.ndjson_path +
                        "': flush failed");
    out.close();
  }
  if (!job.checkpoint_path.empty())
    exec::save_checkpoint(
        job.checkpoint_path,
        {grid.grid_hash(), rows_done, ndjson_bytes, job.shard});

  result.sweep = runner.stats();
  if (metrics != nullptr) runner.export_metrics(*metrics);
  return result;
}

// WFR_SWEEP_TEST_FAIL_SHARD="i" (die before the first row) or "i:rows"
// (die after emitting `rows` rows): the crash-injection hook behind the
// spawn retry tests.  Returns the fail row when the hook targets
// `shard_index`, nullopt otherwise.
std::optional<std::uint64_t> parse_fail_shard_hook(const std::string& spec,
                                                   int shard_index) {
  const auto colon = spec.find(':');
  const std::string id = spec.substr(0, colon);
  if (parse_long_flag("WFR_SWEEP_TEST_FAIL_SHARD", id) != shard_index)
    return std::nullopt;
  if (colon == std::string::npos) return 0;
  return parse_u64_flag("WFR_SWEEP_TEST_FAIL_SHARD", spec.substr(colon + 1));
}

// wfr sweep --stream — the campaign-scale path: rows stream to stdout
// (and --ndjson) in deterministic row order as slots complete, with no
// end-of-grid buffering, so RSS stays flat at any grid size.  With
// --checkpoint the sweep periodically persists its progress (grid hash,
// emitted-row prefix, output byte count; exec/checkpoint.hpp) and
// --resume picks up where a killed run left off, re-assembling the
// NDJSON file byte-identically to an uninterrupted run.  With
// --shards N --shard-id I this process streams only shard I of the grid
// (shard-local rows, shard-keyed checkpoints; exec/shard.hpp) — the
// worker half of the multi-process driver below.
int run_sweep_stream(const Args& args, const exec::SweepGrid& grid,
                     exec::SweepOptions options) {
  if (args.get_optional("svg"))
    throw util::InvalidArgument(
        "--svg buffers every scenario model; drop --stream to render it");

  StreamJob job;
  if (auto window = args.get_optional("reorder-window"))
    job.reorder_window = static_cast<std::size_t>(
        parse_long_flag_in("reorder-window", *window, 1, 1 << 24));

  if (auto shards = args.get_optional("shards"))
    job.shard.count =
        static_cast<int>(parse_long_flag_in("shards", *shards, 1, 1 << 12));
  if (auto id = args.get_optional("shard-id")) {
    if (!args.get_optional("shards"))
      throw util::InvalidArgument("--shard-id needs --shards");
    job.shard.index = static_cast<int>(
        parse_long_flag_in("shard-id", *id, 0, job.shard.count - 1));
  } else if (job.shard.sharded()) {
    throw util::InvalidArgument(
        "--shards without --spawn needs --shard-id (which slice this "
        "process owns)");
  }
  if (auto mode = args.get_optional("shard-mode"))
    job.shard.mode = exec::parse_shard_mode(*mode);

  const auto ndjson_path = args.get_optional("ndjson");
  auto checkpoint_path = args.get_optional("checkpoint");
  const auto resume_path = args.get_optional("resume");
  if ((checkpoint_path || resume_path) && !ndjson_path)
    throw util::InvalidArgument(
        "--checkpoint/--resume need --ndjson: the checkpoint records the "
        "output file's byte length");
  // Resuming keeps checkpointing to the same file unless overridden.
  if (resume_path && !checkpoint_path) checkpoint_path = resume_path;

  if (auto every = args.get_optional("checkpoint-every"))
    job.checkpoint_every = static_cast<std::size_t>(
        parse_long_flag_in("checkpoint-every", *every, 1, 1 << 30));
  if (auto rows = args.get_optional("abort-after-rows"))
    job.abort_after = parse_u64_flag("abort-after-rows", *rows);
  if (job.shard.sharded())
    if (const char* hook = std::getenv("WFR_SWEEP_TEST_FAIL_SHARD"))
      job.fail_after = parse_fail_shard_hook(hook, job.shard.index);

  job.ndjson_path = ndjson_path.value_or("");
  job.checkpoint_path = checkpoint_path.value_or("");
  job.resume_path = resume_path.value_or("");

  obs::MetricsRegistry registry;
  const auto metrics_path = args.get_optional("metrics");
  const StreamJobStats run =
      run_stream_job(grid, options, job, metrics_path ? &registry : nullptr);

  if (job.shard.sharded()) {
    std::cout << util::format(
        "sweep shard %d/%d (%s) of '%s' on '%s': %llu of %zu points, "
        "%llu emitted, %llu evaluated, %llu cache hits, %llu evictions\n",
        job.shard.index, job.shard.count,
        exec::shard_mode_name(job.shard.mode),
        grid.base_workflow().name.c_str(), grid.base_system().name.c_str(),
        static_cast<unsigned long long>(job.shard.rows(grid.size())),
        grid.size(), static_cast<unsigned long long>(run.new_rows),
        static_cast<unsigned long long>(run.sweep.cache_misses),
        static_cast<unsigned long long>(run.sweep.cache_hits),
        static_cast<unsigned long long>(run.sweep.cache_evictions));
  } else {
    std::cout << util::format(
        "sweep of '%s' on '%s': %zu points, %llu emitted, %llu evaluated, "
        "%llu cache hits, %llu evictions\n",
        grid.base_workflow().name.c_str(), grid.base_system().name.c_str(),
        grid.size(), static_cast<unsigned long long>(run.new_rows),
        static_cast<unsigned long long>(run.sweep.cache_misses),
        static_cast<unsigned long long>(run.sweep.cache_hits),
        static_cast<unsigned long long>(run.sweep.cache_evictions));
  }
  if (ndjson_path) std::cout << "wrote " << *ndjson_path << "\n";
  if (checkpoint_path) std::cout << "wrote " << *checkpoint_path << "\n";

  if (metrics_path) {
    util::write_file(*metrics_path, registry.snapshot().pretty() + "\n");
    std::cout << "wrote " << *metrics_path << "\n";
  }
  return 0;
}

// wfr sweep --stream --shards N --spawn — the multi-process campaign
// driver: fork one shard worker per shard (strictly before any thread
// pool exists), monitor them, retry a failed shard once (resuming from
// its checkpoint when checkpointing is on), and merge the per-shard part
// files byte-identically to a single-process stream.  Workers write
// '<ndjson>.shard<i>' and checkpoint to '<checkpoint>.shard<i>'; both
// are scaffolding, removed once the merged output is durable.
int run_sweep_spawn(const Args& args, const exec::SweepGrid& grid,
                    const exec::SweepOptions& options) {
  for (const char* flag : {"shard-id", "metrics", "abort-after-rows", "svg"})
    if (args.get_optional(flag))
      throw util::InvalidArgument(std::string("--") + flag +
                                  " cannot be combined with --spawn");
  const auto shards_flag = args.get_optional("shards");
  if (!shards_flag)
    throw util::InvalidArgument("--spawn needs --shards <n>");
  const int shards =
      static_cast<int>(parse_long_flag_in("shards", *shards_flag, 1, 1 << 12));
  exec::ShardMode mode = exec::ShardMode::kStride;
  if (auto name = args.get_optional("shard-mode"))
    mode = exec::parse_shard_mode(*name);
  const auto ndjson_path = args.get_optional("ndjson");
  if (!ndjson_path)
    throw util::InvalidArgument(
        "--spawn needs --ndjson: shard workers write '<out>.shard<i>' part "
        "files and the merged output lands at <out>");

  StreamJob base;
  base.echo_stdout = false;
  if (auto window = args.get_optional("reorder-window"))
    base.reorder_window = static_cast<std::size_t>(
        parse_long_flag_in("reorder-window", *window, 1, 1 << 24));
  if (auto every = args.get_optional("checkpoint-every"))
    base.checkpoint_every = static_cast<std::size_t>(
        parse_long_flag_in("checkpoint-every", *every, 1, 1 << 30));
  auto checkpoint_path = args.get_optional("checkpoint");
  const auto resume_path = args.get_optional("resume");
  if (resume_path && !checkpoint_path) checkpoint_path = resume_path;

  // Workers split the job budget: an unset --jobs gives each child an
  // equal share of the hardware instead of N full pools.
  exec::SweepOptions child_options = options;
  if (child_options.jobs == 0)
    child_options.jobs = std::max(1, exec::resolve_jobs(0) / shards);

  auto part_path = [&](int i) {
    return *ndjson_path + ".shard" + std::to_string(i);
  };
  auto ckpt_path = [&](int i) {
    return checkpoint_path
               ? *checkpoint_path + ".shard" + std::to_string(i)
               : std::string();
  };

  // Fork strictly before any SweepRunner exists: a child must never
  // inherit a half-alive thread pool.  `allow_resume` gates whether the
  // child picks up its per-shard checkpoint (initial runs only under
  // --resume; retries whenever checkpointing is on) — a fresh run never
  // silently resumes from a stale checkpoint of an earlier campaign.
  auto spawn = [&](int shard_id, bool allow_resume) -> pid_t {
    std::cout.flush();
    std::cerr.flush();
    const pid_t pid = ::fork();
    if (pid < 0)
      throw util::Error(util::format("fork of shard %d/%d failed: %s",
                                     shard_id, shards,
                                     std::strerror(errno)));
    if (pid > 0) return pid;
    int status = 1;
    try {
      StreamJob job = base;
      job.shard = {shards, shard_id, mode};
      job.ndjson_path = part_path(shard_id);
      job.checkpoint_path = ckpt_path(shard_id);
      if (allow_resume && !job.checkpoint_path.empty() &&
          std::filesystem::exists(job.checkpoint_path) &&
          std::filesystem::exists(job.ndjson_path))
        job.resume_path = job.checkpoint_path;
      if (const char* hook = std::getenv("WFR_SWEEP_TEST_FAIL_SHARD"))
        job.fail_after = parse_fail_shard_hook(hook, shard_id);
      run_stream_job(grid, child_options, job, nullptr);
      status = 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "wfr: shard %d/%d: %s\n", shard_id, shards,
                   e.what());
    }
    std::_Exit(status);
  };

  struct Child {
    pid_t pid;
    int shard;
    bool retried;
  };
  std::vector<Child> running;
  running.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i)
    running.push_back({spawn(i, resume_path.has_value()), i, false});

  auto kill_all = [&running] {
    for (const Child& c : running) ::kill(c.pid, SIGKILL);
    for (const Child& c : running) ::waitpid(c.pid, nullptr, 0);
    running.clear();
  };

  while (!running.empty()) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      const std::string reason = std::strerror(errno);
      kill_all();
      throw util::Error("waitpid for shard workers failed: " + reason);
    }
    const auto it =
        std::find_if(running.begin(), running.end(),
                     [pid](const Child& c) { return c.pid == pid; });
    if (it == running.end()) continue;
    const Child child = *it;
    running.erase(it);
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      std::cout << util::format("shard %d/%d done\n", child.shard, shards);
      continue;
    }
    const std::string reason =
        WIFSIGNALED(status)
            ? util::format("killed by signal %d", WTERMSIG(status))
            : util::format("exit status %d",
                           WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    if (child.retried) {
      kill_all();
      throw util::Error(util::format(
          "shard %d/%d failed twice (%s); giving up", child.shard, shards,
          reason.c_str()));
    }
    // One retry, resuming from the shard's checkpoint when there is one.
    // The injected-failure hook is cleared first so a test crash is not
    // replayed forever.
    ::unsetenv("WFR_SWEEP_TEST_FAIL_SHARD");
    std::cout << util::format("shard %d/%d failed (%s); retrying%s\n",
                              child.shard, shards, reason.c_str(),
                              checkpoint_path ? " from its checkpoint" : "");
    running.push_back(
        {spawn(child.shard, checkpoint_path.has_value()), child.shard, true});
  }

  std::vector<std::string> parts;
  parts.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) parts.push_back(part_path(i));
  {
    std::ofstream out(*ndjson_path, std::ios::binary | std::ios::trunc);
    if (!out)
      throw util::Error("cannot write '" + *ndjson_path +
                        "': failed to open for writing");
    exec::merge_shard_outputs(parts, mode, grid.size(), out);
    out.flush();
    if (!out)
      throw util::Error("cannot write '" + *ndjson_path + "': flush failed");
  }
  // The merged file is the durable artifact; parts and per-shard
  // checkpoints are scaffolding.
  std::error_code ec;
  for (int i = 0; i < shards; ++i) {
    std::filesystem::remove(parts[static_cast<std::size_t>(i)], ec);
    if (checkpoint_path) std::filesystem::remove(ckpt_path(i), ec);
  }

  std::cout << util::format(
      "sweep of '%s' on '%s': %zu points across %d shards (%s)\n",
      grid.base_workflow().name.c_str(), grid.base_system().name.c_str(),
      grid.size(), shards, exec::shard_mode_name(mode));
  std::cout << "wrote " << *ndjson_path << "\n";
  return 0;
}

// wfr sweep — fan a parameter grid across the thread pool and tabulate
// the resulting ceilings.  Scenario fan-out follows the determinism
// contract (docs/PARALLELISM.md): output bytes are identical at --jobs 1
// and --jobs N, and repeated grid points are served from the
// characterization cache.
int cmd_sweep(const Args& args) {
  const core::SystemSpec system = load_system(args.get("system"));

  core::WorkflowCharacterization base;
  if (auto path = args.get_optional("characterization")) {
    base = core::WorkflowCharacterization::from_json(
        util::Json::parse(read_file(*path)));
  } else if (auto path = args.get_optional("workflow")) {
    // Characterize by one serial simulation; the sweep then explores the
    // model around that measured point.
    const dag::WorkflowGraph graph =
        dag::load_workflow(read_workflow_text(*path));
    base = core::characterize_trace(
        graph, sim::run_workflow(graph, system.to_machine()));
  } else {
    throw util::InvalidArgument(
        "sweep needs --characterization or --workflow");
  }
  if (auto target = args.get_optional("target"))
    base.target_makespan_seconds = util::parse_seconds(*target);

  std::vector<exec::ParamAxis> axes;
  for (const std::string& spec : args.get_all("param")) {
    const auto eq = spec.find('=');
    if (eq == std::string::npos || eq == 0)
      throw util::InvalidArgument("bad --param '" + spec +
                                  "' (want name=v1,v2,...)");
    exec::ParamAxis axis;
    axis.name = spec.substr(0, eq);
    for (const std::string& token : util::split(spec.substr(eq + 1), ','))
      axis.values.push_back(parse_double_flag("param " + axis.name, token));
    axes.push_back(std::move(axis));
  }

  exec::SweepOptions options;
  if (auto jobs = args.get_optional("jobs"))
    options.jobs = static_cast<int>(parse_long_flag("jobs", *jobs));
  if (auto cap = args.get_optional("cache-cap"))
    options.cache_capacity =
        static_cast<std::size_t>(parse_u64_flag("cache-cap", *cap));

  if (args.flag("stream")) {
    const exec::SweepGrid grid(system, base, axes);
    if (args.flag("spawn")) return run_sweep_spawn(args, grid, options);
    return run_sweep_stream(args, grid, options);
  }
  for (const char* flag :
       {"checkpoint", "checkpoint-every", "resume", "abort-after-rows",
        "shards", "shard-id", "shard-mode", "spawn"})
    if (args.get_optional(flag))
      throw util::InvalidArgument(std::string("--") + flag +
                                  " needs --stream");

  const std::vector<exec::Scenario> scenarios =
      exec::expand_grid(system, base, axes);
  exec::SweepRunner runner(options);
  const std::vector<exec::ScenarioResult> results =
      runner.run_models(scenarios);

  util::TextTable table({"scenario", "wall", "attainable", "binding ceiling",
                         "slot latency", "campaign makespan"});
  for (int column = 1; column <= 2; ++column)
    table.set_align(column, util::Align::kRight);
  for (const exec::ScenarioResult& r : results) {
    table.add_row({r.label, util::format("%d", r.parallelism_wall),
                   util::format("%.3g tasks/s", r.attainable_tps_at_wall),
                   r.binding_label,
                   r.slot_seconds > 0.0
                       ? util::format_seconds(r.slot_seconds)
                       : "-",
                   util::format_seconds(r.campaign_makespan_seconds)});
  }
  std::cout << util::format(
      "sweep of '%s' on '%s': %d points, %d evaluated, %d cache hits\n\n",
      base.name.c_str(), system.name.c_str(),
      static_cast<int>(results.size()),
      static_cast<int>(runner.stats().cache_misses),
      static_cast<int>(runner.stats().cache_hits));
  std::cout << table.str() << "\n";

  std::string ndjson;
  for (const exec::ScenarioResult& r : results)
    ndjson += exec::scenario_result_line(r) + "\n";
  std::cout << ndjson;
  if (auto path = args.get_optional("ndjson")) {
    util::write_file(*path, ndjson);
    std::cout << "wrote " << *path << "\n";
  }

  if (auto path = args.get_optional("metrics")) {
    obs::MetricsRegistry registry;
    runner.export_metrics(registry);
    util::write_file(*path, registry.snapshot().pretty() + "\n");
    std::cout << "wrote " << *path << "\n";
  }

  if (auto svg = args.get_optional("svg")) {
    // Multi-curve roofline: the first scenario's full model carries the
    // axes; every other scenario contributes its binding ceiling as an
    // extra labeled curve, and each point lands as a projected dot at its
    // parallelism wall.
    core::RooflineModel model = *results.front().model;
    for (std::size_t i = 1; i < results.size(); ++i) {
      core::Ceiling ceiling = results[i].model->binding_ceiling(
          static_cast<double>(results[i].parallelism_wall));
      ceiling.label = results[i].label + ": " + ceiling.label;
      model.add_ceiling(std::move(ceiling));
    }
    for (const exec::ScenarioResult& r : results) {
      core::Dot dot;
      dot.label = r.label;
      dot.parallel_tasks = static_cast<double>(r.parallelism_wall);
      dot.tps = r.attainable_tps_at_wall;
      dot.style = "projected";
      model.add_dot(std::move(dot));
    }
    plot::write_roofline_svg(model, *svg);
    std::cout << "wrote " << *svg << "\n";
  }
  return 0;
}

// wfr serve — the roofline-as-a-service daemon (docs/SERVER.md): an
// event-driven (epoll reactor) HTTP/1.1 JSON server that answers model
// and sweep queries, renders SVGs, and exposes Prometheus metrics.
// SIGINT/SIGTERM drain in-flight requests before the process exits 0.
int cmd_serve(const Args& args) {
  serve::ServerOptions options;
  if (auto host = args.get_optional("host")) options.host = *host;
  if (auto port = args.get_optional("port"))
    options.port = static_cast<int>(parse_long_flag_in("port", *port, 0, 65535));
  if (auto jobs = args.get_optional("jobs"))
    options.jobs = static_cast<int>(parse_long_flag_in("jobs", *jobs, 1, 1 << 16));
  if (auto io = args.get_optional("io-threads"))
    options.io_threads =
        static_cast<int>(parse_long_flag_in("io-threads", *io, 1, 64));
  if (auto idle = args.get_optional("idle-timeout"))
    options.idle_timeout_ms = static_cast<int>(
        parse_long_flag_in("idle-timeout", *idle, 0, 1 << 30));
  if (auto queue = args.get_optional("max-queue"))
    options.max_queue =
        static_cast<int>(parse_long_flag_in("max-queue", *queue, 1, 1 << 20));
  if (auto body = args.get_optional("max-body"))
    options.max_body_bytes =
        static_cast<std::size_t>(parse_u64_flag("max-body", *body));

  serve::AppOptions app_options;
  if (auto jobs = args.get_optional("sweep-jobs"))
    app_options.sweep_jobs =
        static_cast<int>(parse_long_flag_in("sweep-jobs", *jobs, 1, 1 << 16));
  if (auto cap = args.get_optional("sweep-cache-cap"))
    app_options.sweep_cache_capacity =
        static_cast<std::size_t>(parse_u64_flag("sweep-cache-cap", *cap));
  std::string trace_out;
  if (auto out = args.get_optional("trace-out")) trace_out = *out;
  if (auto cap = args.get_optional("trace-cap"))
    app_options.trace_capacity =
        static_cast<std::size_t>(parse_long_flag_in("trace-cap", *cap, 1,
                                                    1 << 24));
  if (args.flag("no-trace")) app_options.trace_enabled = false;

  serve::App app(app_options);
  serve::Server server(options);
  app.bind(server);
  const int port = server.start();
  server.install_signal_handlers();
  // Flush before blocking so supervisors (and the serve-smoke CI job) can
  // wait for readiness on this line.
  std::cout << "wfr serve: listening on http://" << options.host << ":"
            << port << " (" << server.jobs() << " workers, "
            << server.io_threads() << " io threads, max queue "
            << options.max_queue << ")" << std::endl;
  server.serve_forever();
  const auto& stats = server.stats();
  std::cout << "wfr serve: drained; served " << stats.requests.load()
            << " requests on " << stats.accepted.load() << " connections ("
            << stats.shed.load() << " shed)" << std::endl;
  std::cout << "wfr serve: " << app.drain_summary() << std::endl;
  if (!trace_out.empty()) {
    app.write_trace(trace_out);
    std::cout << "wfr serve: trace written to " << trace_out << std::endl;
  }
  return 0;
}

// wfr import — convert WfCommons/WfBench workflow instances to our
// workflow description JSON (docs/SERVER.md has the HTTP equivalent).
// One input prints its converted workflow; several inputs merge into one
// union workflow (task names prefixed with their instance name so ids
// stay unique) unless --out-dir writes one converted file per input.
// Conversion fans across the thread pool; output is byte-identical at
// any --jobs count.  The per-instance summary goes to stderr so stdout
// stays pipeable into --workflow -.
int cmd_import(const Args& args) {
  const std::vector<std::string>& inputs = args.positional;
  if (inputs.empty())
    throw util::InvalidArgument(
        "import needs at least one WfCommons instance file (or - for stdin)");

  int jobs = 0;
  if (auto flag = args.get_optional("jobs"))
    jobs = static_cast<int>(parse_long_flag_in("jobs", *flag, 1, 1 << 16));

  // Read serially (stdin only works once), convert in parallel.
  std::vector<std::string> texts;
  texts.reserve(inputs.size());
  for (const std::string& input : inputs)
    texts.push_back(read_workflow_text(input));

  exec::ThreadPool pool(jobs);
  const std::vector<workflows::WfInstance> instances =
      exec::parallel_map<workflows::WfInstance>(
          pool, texts.size(),
          [&texts](std::size_t i) {
            return workflows::import_wfcommons(texts[i]);
          });

  for (std::size_t i = 0; i < instances.size(); ++i) {
    const workflows::WfInstance& inst = instances[i];
    std::cerr << util::format(
        "wfr import: %s: %zu tasks, %zu files, %s layout%s\n",
        inst.graph.name().c_str(), inst.graph.task_count(), inst.file_count,
        inst.legacy ? "legacy" : "specification",
        inst.schema_version.empty()
            ? ""
            : (" (schema " + inst.schema_version + ")").c_str());
  }

  if (auto dir = args.get_optional("out-dir")) {
    std::filesystem::create_directories(*dir);
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const std::string stem =
          inputs[i] == "-" ? util::format("stdin-%zu", i)
                           : std::filesystem::path(inputs[i]).stem().string();
      const std::string path =
          (std::filesystem::path(*dir) / (stem + ".json")).string();
      util::write_file(path,
                       dag::save_workflow_text(instances[i].graph) + "\n");
      std::cout << "wrote " << path << "\n";
    }
    return 0;
  }

  if (instances.size() == 1) {
    std::cout << dag::save_workflow_text(instances[0].graph) << "\n";
    return 0;
  }

  // Merge into one union workflow so a glob of instances still pipes into
  // a single run/sweep.
  dag::WorkflowGraph merged("imported");
  for (const workflows::WfInstance& inst : instances) {
    const auto base = static_cast<dag::TaskId>(merged.task_count());
    const auto count = static_cast<dag::TaskId>(inst.graph.task_count());
    for (dag::TaskId id = 0; id < count; ++id) {
      dag::TaskSpec spec = inst.graph.task(id);
      spec.name = inst.graph.name() + "/" + spec.name;
      merged.add_task(std::move(spec));
    }
    for (dag::TaskId id = 0; id < count; ++id)
      for (dag::TaskId pred : inst.graph.predecessors(id))
        merged.add_dependency(base + pred, base + id);
  }
  merged.validate();
  std::cout << dag::save_workflow_text(merged) << "\n";
  return 0;
}

// wfr check — the differential validation harness (docs/TESTING.md):
// seed-generate scenarios, feed each through both the analytical roofline
// and the simulator, and print a deterministic pass/divergence table.
// Divergences exit 1 and dump replayable repro JSON files.
int cmd_check(const Args& args) {
  check::CheckOptions options;
  if (auto seeds = args.get_optional("seeds"))
    options.seeds = static_cast<std::size_t>(
        parse_long_flag_in("seeds", *seeds, 1, 1 << 20));
  if (auto tolerance = args.get_optional("tolerance"))
    options.tolerance = parse_double_flag("tolerance", *tolerance);
  if (auto jobs = args.get_optional("jobs"))
    options.jobs = static_cast<int>(parse_long_flag_in("jobs", *jobs, 1, 1 << 16));
  if (auto seed = args.get_optional("base-seed"))
    options.base_seed = parse_u64_flag("base-seed", *seed);
  if (auto gen = args.get_optional("gen"))
    options.mode = check::parse_gen_mode(*gen);

  if (auto path = args.get_optional("replay")) {
    const util::Json repro = util::Json::parse(read_file(*path));
    // Unless overridden, judge the replay at the tolerance the repro was
    // recorded with.
    if (!args.get_optional("tolerance"))
      options.tolerance = check::repro_tolerance(repro);
    const check::DifferentialRunner runner(options);
    const check::CaseResult result = runner.replay(repro);
    std::cout << runner.repro_json(result).pretty() << "\n";
    std::cout << (result.passed() ? "replay: PASS\n"
                                  : "replay: DIVERGENCE\n");
    return result.passed() ? 0 : 1;
  }

  const check::DifferentialRunner runner(options);
  const check::CheckReport report = runner.run();
  std::cout << report.table();
  if (!report.all_passed()) {
    const std::string dir = args.get_optional("repro-dir").value_or(".");
    for (const std::string& path :
         check::write_repro_files(runner, report, dir))
      std::cout << "wrote " << path << "\n";
  }
  return report.all_passed() ? 0 : 1;
}

int cmd_compare(const Args& args) {
  const core::SystemSpec system = load_system(args.get("system"));
  auto load = [&](const std::string& option) {
    return core::build_model(
        system, core::WorkflowCharacterization::from_json(
                    util::Json::parse(read_file(args.get(option)))));
  };
  const core::RooflineModel before = load("before");
  const core::RooflineModel after = load("after");
  std::cout << core::compare_models(before, after).to_string();
  return 0;
}

int cmd_archetype(const Args& args) {
  const std::string kind = args.get("kind");
  const int size = static_cast<int>(
      args.get_optional("size") ? parse_long_flag("size", *args.get_optional("size"))
                                : 8);
  archetypes::ArchetypeParams params;
  if (auto scale = args.get_optional("scale"))
    params.scale = parse_double_flag("scale", *scale);
  if (auto nodes = args.get_optional("nodes"))
    params.nodes_per_task = static_cast<int>(parse_long_flag("nodes", *nodes));

  dag::WorkflowGraph graph;
  if (kind == "ensemble") {
    graph = archetypes::ensemble(size, params);
  } else if (kind == "pipeline") {
    graph = archetypes::pipeline(size, params);
  } else if (kind == "fork-join") {
    graph = archetypes::fork_join(size, params);
  } else if (kind == "map-reduce") {
    graph = archetypes::map_reduce(size, /*iterations=*/3, params);
  } else if (kind == "sim-insitu") {
    graph = archetypes::simulation_insitu(size, params);
  } else if (kind == "random") {
    archetypes::RandomDagParams rnd;
    rnd.tasks = size;
    rnd.base = params;
    if (auto seed = args.get_optional("seed"))
      rnd.seed = parse_u64_flag("seed", *seed);
    graph = archetypes::random_dag(rnd);
  } else {
    throw util::InvalidArgument("unknown archetype kind '" + kind + "'");
  }
  std::cout << dag::save_workflow_text(graph) << "\n";
  return 0;
}

int cmd_presets() {
  for (const core::SystemSpec& s :
       {core::SystemSpec::perlmutter_gpu(), core::SystemSpec::perlmutter_cpu(),
        core::SystemSpec::cori_haswell()}) {
    std::cout << util::format(
        "%-16s %5d nodes  %s/node  fs %s  external %s\n", s.name.c_str(),
        s.total_nodes, util::format_flops_rate(s.node.peak_flops).c_str(),
        util::format_rate(s.fs_gbs).c_str(),
        util::format_rate(s.external_gbs).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command != "import" && !args.positional.empty())
      throw util::InvalidArgument("unexpected argument '" +
                                  args.positional.front() + "'");
    if (args.command == "analyze") return cmd_analyze(args);
    if (args.command == "model") return cmd_model(args);
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "run") return cmd_run(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "import") return cmd_import(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "check") return cmd_check(args);
    if (args.command == "compare") return cmd_compare(args);
    if (args.command == "archetype") return cmd_archetype(args);
    if (args.command == "presets") return cmd_presets();
    print_usage();
    return args.command.empty() ? 1 : (args.command == "help" ? 0 : 1);
  } catch (const std::exception& e) {
    std::cerr << "wfr: " << e.what() << "\n";
    return 1;
  }
}

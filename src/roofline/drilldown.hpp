#pragma once
// The bridge the paper describes in Section III-D: when the Workflow
// Roofline classifies a workflow as node-bound, drill down into the
// traditional node Roofline — each node-bound task becomes a kernel dot
// (its per-node flops/bytes and measured time).

#include "core/model.hpp"
#include "core/taskview.hpp"
#include "dag/graph.hpp"
#include "roofline/node_roofline.hpp"
#include "trace/timeline.hpp"

namespace wfr::roofline {

/// Result of a drill-down attempt.
struct DrillDown {
  /// Whether drilling down is the right next step (the workflow dot is
  /// node-bound or control-flow-bound at node level).
  bool applicable = false;
  /// Why / why not, in one sentence.
  std::string reason;
  /// The node roofline with one kernel per task (empty when not
  /// applicable).
  NodeRoofline node_roofline{"n/a", 1.0};
};

/// Builds the node-level view for a workflow execution.  Tasks without
/// node-level demand (pure I/O or overhead tasks) are skipped.  The
/// per-kernel bytes use the task's dominant node memory level (HBM when
/// present, else DRAM).
DrillDown drill_down(const core::RooflineModel& model,
                     const dag::WorkflowGraph& graph,
                     const trace::WorkflowTrace& trace);

}  // namespace wfr::roofline

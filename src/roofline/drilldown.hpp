#pragma once
// The bridge the paper describes in Section III-D: when the Workflow
// Roofline classifies a workflow as node-bound, drill down into the
// traditional node Roofline — each node-bound task becomes a kernel dot
// (its per-node flops/bytes and measured time).

#include "core/model.hpp"
#include "core/taskview.hpp"
#include "dag/graph.hpp"
#include "roofline/node_roofline.hpp"
#include "sim/runner.hpp"
#include "trace/timeline.hpp"

namespace wfr::roofline {

/// Result of a drill-down attempt.
struct DrillDown {
  /// Whether drilling down is the right next step (the workflow dot is
  /// node-bound or control-flow-bound at node level).
  bool applicable = false;
  /// Why / why not, in one sentence.
  std::string reason;
  /// The node roofline with one kernel per task (empty when not
  /// applicable).
  NodeRoofline node_roofline{"n/a", 1.0};
};

/// Builds the node-level view for a workflow execution.  Tasks without
/// node-level demand (pure I/O or overhead tasks) are skipped.  The
/// per-kernel bytes use the task's dominant node memory level (HBM when
/// present, else DRAM).
DrillDown drill_down(const core::RooflineModel& model,
                     const dag::WorkflowGraph& graph,
                     const trace::WorkflowTrace& trace);

/// The *measured* operating point of a simulated run: where the workflow
/// actually landed relative to the analytic ceilings, plus how busy each
/// shared channel was while getting there.  This is the Ridgeline-style
/// "plot the measurement next to the model" step: achieved throughput
/// below a ceiling with a low busy fraction points at scheduling gaps,
/// while a busy fraction near 1 confirms the channel is the bottleneck.
struct OperatingPoint {
  /// The dot (style "observed"): measured peak concurrency on x, achieved
  /// task throughput on y, labelled with the busy fractions.
  core::Dot dot;
  double achieved_tps = 0.0;
  /// Fraction of the makespan each shared channel had workflow flows in
  /// flight (0 when the channel is absent or unused).
  double fs_busy_fraction = 0.0;
  double external_busy_fraction = 0.0;
  /// Delivered / (capacity x busy time) per channel, < 1 under background
  /// contention.
  double fs_utilization = 0.0;
  double external_utilization = 0.0;
  /// One-sentence reading of the measurement.
  std::string summary;
};

/// Derives the operating point from a detailed run.  Throws
/// InvalidArgument when the trace is empty or has zero makespan.
OperatingPoint measured_operating_point(const sim::RunResult& result);

/// Adds the operating point to `model` as an "observed" dot so that
/// renderers place the measurement next to the analytic ceilings.
void add_operating_point(core::RooflineModel* model,
                         const OperatingPoint& point);

}  // namespace wfr::roofline

#include "roofline/drilldown.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::roofline {

DrillDown drill_down(const core::RooflineModel& model,
                     const dag::WorkflowGraph& graph,
                     const trace::WorkflowTrace& trace) {
  util::require(!model.dots().empty(),
                "drill_down needs a model with a measured dot");
  DrillDown result;
  const core::BoundClass bound = model.classify(model.dots().front());
  if (bound != core::BoundClass::kNodeBound &&
      bound != core::BoundClass::kParallelismBound) {
    result.applicable = false;
    result.reason = util::format(
        "workflow is %s; the bottleneck is not inside the node — the "
        "traditional Roofline would not explain it",
        core::bound_class_name(bound));
    return result;
  }

  result.applicable = true;
  result.reason =
      "workflow is " + std::string(core::bound_class_name(bound)) +
      "; apply the traditional node Roofline per task";
  result.node_roofline = NodeRoofline::from_system(model.system());

  for (const trace::TaskRecord& record : trace.records()) {
    util::require(record.task < graph.task_count(),
                  "trace record references an unknown task id");
    const dag::ResourceDemand& demand = graph.task(record.task).demand;
    if (demand.flops_per_node <= 0.0) continue;  // no node kernel to plot
    // Dominant node memory level: HBM when the task uses it, else DRAM.
    const double bytes = demand.hbm_bytes_per_node > 0.0
                             ? demand.hbm_bytes_per_node
                             : demand.dram_bytes_per_node;
    if (bytes <= 0.0 || record.duration() <= 0.0) continue;
    KernelSample kernel;
    kernel.name = record.name;
    kernel.flops = demand.flops_per_node;
    kernel.bytes = bytes;
    kernel.seconds = record.duration();
    result.node_roofline.add_kernel(std::move(kernel));
  }
  return result;
}

}  // namespace wfr::roofline

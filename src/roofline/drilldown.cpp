#include "roofline/drilldown.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::roofline {

DrillDown drill_down(const core::RooflineModel& model,
                     const dag::WorkflowGraph& graph,
                     const trace::WorkflowTrace& trace) {
  util::require(!model.dots().empty(),
                "drill_down needs a model with a measured dot");
  DrillDown result;
  const core::BoundClass bound = model.classify(model.dots().front());
  if (bound != core::BoundClass::kNodeBound &&
      bound != core::BoundClass::kParallelismBound) {
    result.applicable = false;
    result.reason = util::format(
        "workflow is %s; the bottleneck is not inside the node — the "
        "traditional Roofline would not explain it",
        core::bound_class_name(bound));
    return result;
  }

  result.applicable = true;
  result.reason =
      "workflow is " + std::string(core::bound_class_name(bound)) +
      "; apply the traditional node Roofline per task";
  result.node_roofline = NodeRoofline::from_system(model.system());

  for (const trace::TaskRecord& record : trace.records()) {
    util::require(record.task < graph.task_count(),
                  "trace record references an unknown task id");
    const dag::ResourceDemand& demand = graph.task(record.task).demand;
    if (demand.flops_per_node <= 0.0) continue;  // no node kernel to plot
    // Dominant node memory level: HBM when the task uses it, else DRAM.
    const double bytes = demand.hbm_bytes_per_node > 0.0
                             ? demand.hbm_bytes_per_node
                             : demand.dram_bytes_per_node;
    if (bytes <= 0.0 || record.duration() <= 0.0) continue;
    KernelSample kernel;
    kernel.name = record.name;
    kernel.flops = demand.flops_per_node;
    kernel.bytes = bytes;
    kernel.seconds = record.duration();
    result.node_roofline.add_kernel(std::move(kernel));
  }
  return result;
}

OperatingPoint measured_operating_point(const sim::RunResult& result) {
  const trace::WorkflowTrace& trace = result.trace;
  util::require(!trace.empty(),
                "measured_operating_point needs a non-empty trace");
  const double makespan = trace.makespan_seconds();
  util::require(makespan > 0.0,
                "measured_operating_point needs a positive makespan");

  OperatingPoint point;
  point.achieved_tps =
      static_cast<double>(trace.records().size()) / makespan;
  point.fs_busy_fraction = result.filesystem.busy_seconds / makespan;
  point.external_busy_fraction = result.external.busy_seconds / makespan;
  point.fs_utilization = result.filesystem.utilization;
  point.external_utilization = result.external.utilization;

  point.dot.parallel_tasks =
      std::max(1, trace.peak_concurrency());
  point.dot.tps = point.achieved_tps;
  point.dot.style = "observed";
  point.dot.label = util::format("observed (fs busy %.0f%%, ext busy %.0f%%)",
                                 100.0 * point.fs_busy_fraction,
                                 100.0 * point.external_busy_fraction);

  const double busier = std::max(point.fs_busy_fraction,
                                 point.external_busy_fraction);
  const char* channel =
      point.fs_busy_fraction >= point.external_busy_fraction ? "filesystem"
                                                             : "external";
  if (busier >= 0.5) {
    point.summary = util::format(
        "achieved %.3g tasks/s; the %s channel was occupied %.0f%% of the "
        "makespan — the measured point sits against that ceiling",
        point.achieved_tps, channel, 100.0 * busier);
  } else {
    point.summary = util::format(
        "achieved %.3g tasks/s with every shared channel occupied less "
        "than %.0f%% of the makespan — the gap to the ceilings is "
        "scheduling or node-local time, not shared-channel saturation",
        point.achieved_tps, 100.0 * std::max(busier, 0.01));
  }
  return point;
}

void add_operating_point(core::RooflineModel* model,
                         const OperatingPoint& point) {
  util::require(model != nullptr, "add_operating_point needs a model");
  model->add_dot(point.dot);
}

}  // namespace wfr::roofline

#pragma once
// The traditional (node-level) Roofline model of Williams et al. — the
// paper's Section III-D "next step in analysis if a workflow is bound by
// node-local performance rather than the global network or filesystem".
//
// Performance [FLOP/s] vs. arithmetic intensity [FLOP/byte], bounded by
// the node's peak compute (horizontal) and one diagonal per memory /
// transfer level (DRAM, HBM, PCIe, NIC).

#include <string>
#include <vector>

#include "core/system_spec.hpp"

namespace wfr::roofline {

/// One measured (or modeled) kernel execution.
struct KernelSample {
  std::string name;
  double flops = 0.0;    // total floating-point operations
  double bytes = 0.0;    // data moved through the level of interest
  double seconds = 0.0;  // wall-clock time

  /// FLOPs per byte; throws when bytes is 0.
  double arithmetic_intensity() const;
  /// Achieved FLOP/s; throws when seconds is 0.
  double achieved_flops() const;
};

/// One bandwidth ceiling of the node roofline.
struct BandwidthCeiling {
  std::string label;      // "DRAM", "HBM", ...
  double bytes_per_second = 0.0;
};

/// The classic classification.
enum class KernelBound { kMemoryBound, kComputeBound };

const char* kernel_bound_name(KernelBound bound);

/// A node-level Roofline: peak compute plus bandwidth ceilings.
class NodeRoofline {
 public:
  /// Requires peak_flops > 0 and at least one bandwidth ceiling later.
  explicit NodeRoofline(std::string name, double peak_flops);

  /// Builds from a SystemSpec node: one ceiling per present channel
  /// (DRAM, HBM, PCIe, NIC).  Throws when the node has no channels.
  static NodeRoofline from_system(const core::SystemSpec& system);

  const std::string& name() const { return name_; }
  double peak_flops() const { return peak_flops_; }

  void add_bandwidth(std::string label, double bytes_per_second);
  const std::vector<BandwidthCeiling>& bandwidths() const {
    return bandwidths_;
  }

  /// The highest bandwidth ceiling (the one that defines the knee).
  const BandwidthCeiling& top_bandwidth() const;

  /// Attainable FLOP/s at arithmetic intensity `ai` against the top
  /// bandwidth: min(peak, top_bw * ai).
  double attainable_flops(double ai) const;

  /// Attainable against a specific named level; throws on unknown label.
  double attainable_flops(double ai, const std::string& level) const;

  /// The machine-balance point (FLOP/byte) of a level: peak / bandwidth.
  double ridge_point(const std::string& level) const;

  /// Memory- vs compute-bound at the top-level bandwidth.
  KernelBound classify(const KernelSample& kernel) const;

  /// Achieved fraction of attainable performance in (0, 1] for a
  /// well-measured kernel.
  double efficiency(const KernelSample& kernel) const;

  // --- Kernels (dots) --------------------------------------------------------
  void add_kernel(KernelSample kernel);
  const std::vector<KernelSample>& kernels() const { return kernels_; }

  /// Multi-line report: ceilings, ridge points, kernels with verdicts.
  std::string report() const;

  /// Renders the classic log-log roofline (GFLOP/s vs AI) as SVG.
  std::string render_svg(double width = 720.0, double height = 520.0) const;
  void write_svg(const std::string& path) const;

 private:
  std::string name_;
  double peak_flops_;
  std::vector<BandwidthCeiling> bandwidths_;
  std::vector<KernelSample> kernels_;
};

}  // namespace wfr::roofline

#include "roofline/node_roofline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "plot/axes.hpp"
#include "plot/palette.hpp"
#include "plot/svg.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace wfr::roofline {

double KernelSample::arithmetic_intensity() const {
  util::require(bytes > 0.0,
                "kernel '" + name + "' moved no bytes; AI undefined");
  return flops / bytes;
}

double KernelSample::achieved_flops() const {
  util::require(seconds > 0.0,
                "kernel '" + name + "' has no duration; FLOP/s undefined");
  return flops / seconds;
}

const char* kernel_bound_name(KernelBound bound) {
  switch (bound) {
    case KernelBound::kMemoryBound: return "memory-bound";
    case KernelBound::kComputeBound: return "compute-bound";
  }
  return "?";
}

NodeRoofline::NodeRoofline(std::string name, double peak_flops)
    : name_(std::move(name)), peak_flops_(peak_flops) {
  util::require(peak_flops > 0.0, "node roofline needs peak_flops > 0");
}

NodeRoofline NodeRoofline::from_system(const core::SystemSpec& system) {
  NodeRoofline r(system.name + " node", system.node.peak_flops);
  if (system.node.hbm_gbs > 0.0) r.add_bandwidth("HBM", system.node.hbm_gbs);
  if (system.node.dram_gbs > 0.0)
    r.add_bandwidth("DRAM", system.node.dram_gbs);
  if (system.node.pcie_gbs > 0.0)
    r.add_bandwidth("PCIe", system.node.pcie_gbs);
  if (system.node.nic_gbs > 0.0) r.add_bandwidth("NIC", system.node.nic_gbs);
  util::require(!r.bandwidths_.empty(),
                "system '" + system.name + "' has no node data channels");
  return r;
}

void NodeRoofline::add_bandwidth(std::string label, double bytes_per_second) {
  util::require(bytes_per_second > 0.0, "bandwidth must be > 0");
  for (const BandwidthCeiling& b : bandwidths_)
    util::require(b.label != label,
                  "duplicate bandwidth level '" + label + "'");
  bandwidths_.push_back(BandwidthCeiling{std::move(label), bytes_per_second});
}

const BandwidthCeiling& NodeRoofline::top_bandwidth() const {
  util::require(!bandwidths_.empty(), "node roofline has no bandwidths");
  return *std::max_element(bandwidths_.begin(), bandwidths_.end(),
                           [](const BandwidthCeiling& a,
                              const BandwidthCeiling& b) {
                             return a.bytes_per_second < b.bytes_per_second;
                           });
}

double NodeRoofline::attainable_flops(double ai) const {
  util::require(ai > 0.0, "arithmetic intensity must be > 0");
  return std::min(peak_flops_, top_bandwidth().bytes_per_second * ai);
}

double NodeRoofline::attainable_flops(double ai,
                                      const std::string& level) const {
  util::require(ai > 0.0, "arithmetic intensity must be > 0");
  for (const BandwidthCeiling& b : bandwidths_)
    if (b.label == level)
      return std::min(peak_flops_, b.bytes_per_second * ai);
  throw util::NotFound("no bandwidth level '" + level + "'");
}

double NodeRoofline::ridge_point(const std::string& level) const {
  for (const BandwidthCeiling& b : bandwidths_)
    if (b.label == level) return peak_flops_ / b.bytes_per_second;
  throw util::NotFound("no bandwidth level '" + level + "'");
}

KernelBound NodeRoofline::classify(const KernelSample& kernel) const {
  return kernel.arithmetic_intensity() <
                 ridge_point(top_bandwidth().label)
             ? KernelBound::kMemoryBound
             : KernelBound::kComputeBound;
}

double NodeRoofline::efficiency(const KernelSample& kernel) const {
  return kernel.achieved_flops() /
         attainable_flops(kernel.arithmetic_intensity());
}

void NodeRoofline::add_kernel(KernelSample kernel) {
  util::require(!kernel.name.empty(), "kernel needs a name");
  (void)kernel.arithmetic_intensity();  // validates bytes
  (void)kernel.achieved_flops();        // validates seconds
  kernels_.push_back(std::move(kernel));
}

std::string NodeRoofline::report() const {
  std::string out = util::format("Node Roofline: %s (peak %s)\n",
                                 name_.c_str(),
                                 util::format_flops_rate(peak_flops_).c_str());
  for (const BandwidthCeiling& b : bandwidths_) {
    out += util::format("  %-6s %-12s ridge at %.3g FLOP/B\n",
                        b.label.c_str(),
                        util::format_rate(b.bytes_per_second).c_str(),
                        peak_flops_ / b.bytes_per_second);
  }
  for (const KernelSample& k : kernels_) {
    out += util::format(
        "  kernel %-20s AI=%-8.3g %-14s %3.0f%% of attainable, %s\n",
        k.name.c_str(), k.arithmetic_intensity(),
        util::format_flops_rate(k.achieved_flops()).c_str(),
        100.0 * efficiency(k), kernel_bound_name(classify(k)));
  }
  return out;
}

std::string NodeRoofline::render_svg(double width, double height) const {
  const plot::Palette& p = plot::default_palette();
  plot::SvgDocument svg(width, height);
  svg.rect(0, 0, width, height, plot::Style{.fill = p.surface});

  const double margin_left = 74.0, margin_right = 26.0, margin_top = 46.0,
               margin_bottom = 56.0;

  // Domains: AI spanning the ridge points and kernels, performance up to
  // the peak.
  double ai_lo = 1e300, ai_hi = -1e300, perf_lo = peak_flops_;
  for (const BandwidthCeiling& b : bandwidths_) {
    const double ridge = peak_flops_ / b.bytes_per_second;
    ai_lo = std::min(ai_lo, ridge / 100.0);
    ai_hi = std::max(ai_hi, ridge * 10.0);
    perf_lo = std::min(perf_lo, b.bytes_per_second * (ridge / 100.0));
  }
  for (const KernelSample& k : kernels_) {
    ai_lo = std::min(ai_lo, k.arithmetic_intensity() / 3.0);
    ai_hi = std::max(ai_hi, k.arithmetic_intensity() * 3.0);
    perf_lo = std::min(perf_lo, k.achieved_flops() / 3.0);
  }
  const plot::LogScale x(ai_lo, ai_hi, margin_left, width - margin_right);
  const plot::LogScale y(perf_lo, peak_flops_ * 3.0,
                         height - margin_bottom, margin_top);

  // Grid.
  for (double t : x.decade_ticks()) {
    svg.line(x(t), margin_top, x(t), height - margin_bottom,
             plot::Style{.stroke = p.grid});
    svg.text(x(t), height - margin_bottom + 16.0, plot::tick_label(t),
             plot::TextStyle{.size = 11, .fill = p.text_secondary,
                             .anchor = plot::Anchor::kMiddle});
  }
  for (double t : y.decade_ticks()) {
    svg.line(margin_left, y(t), width - margin_right, y(t),
             plot::Style{.stroke = p.grid});
    svg.text(margin_left - 8.0, y(t) + 4.0, plot::tick_label(t),
             plot::TextStyle{.size = 11, .fill = p.text_secondary,
                             .anchor = plot::Anchor::kEnd});
  }
  svg.text((margin_left + width - margin_right) / 2.0, height - 16.0,
           "Arithmetic Intensity [FLOP/byte]",
           plot::TextStyle{.size = 13, .fill = p.text_primary,
                           .anchor = plot::Anchor::kMiddle});
  svg.text(20.0, height / 2.0, "Performance [FLOP/s]",
           plot::TextStyle{.size = 13, .fill = p.text_primary,
                           .anchor = plot::Anchor::kMiddle, .rotate = -90.0});
  svg.text(margin_left, 26.0, name_,
           plot::TextStyle{.size = 15, .fill = p.text_primary, .bold = true});

  // Compute roof.
  svg.line(x(ai_lo), y(peak_flops_), x(ai_hi), y(peak_flops_),
           plot::Style{.stroke = p.series_color(0), .stroke_width = 2.0});
  svg.text(x(ai_hi) - 6.0, y(peak_flops_) - 6.0,
           "Peak " + util::format_flops_rate(peak_flops_),
           plot::TextStyle{.size = 11, .fill = p.text_primary,
                           .anchor = plot::Anchor::kEnd});

  // Bandwidth diagonals up to their ridge points; each label sits at the
  // log-midpoint of its own diagonal so labels do not stack where all
  // diagonals meet the plot corner.
  int slot = 1;
  std::vector<double> used_label_y;
  for (const BandwidthCeiling& b : bandwidths_) {
    const double ridge = peak_flops_ / b.bytes_per_second;
    const std::string color = p.series_color(slot++);
    svg.line(x(ai_lo), y(b.bytes_per_second * ai_lo), x(ridge),
             y(peak_flops_),
             plot::Style{.stroke = color, .stroke_width = 2.0});
    const double label_ai = std::sqrt(ai_lo * std::min(ridge, ai_hi));
    // Equal-bandwidth levels draw coincident diagonals; stagger their
    // labels downward so both stay readable.
    double label_y = y(b.bytes_per_second * label_ai) - 6.0;
    bool moved = true;
    while (moved) {
      moved = false;
      for (double used : used_label_y) {
        if (std::fabs(used - label_y) < 13.0) {
          label_y = used + 13.0;
          moved = true;
        }
      }
    }
    used_label_y.push_back(label_y);
    svg.text(x(label_ai) + 6.0, label_y,
             b.label + " " + util::format_rate(b.bytes_per_second),
             plot::TextStyle{.size = 11, .fill = p.text_primary});
  }

  // Kernels.
  for (const KernelSample& k : kernels_) {
    const double cx = x(k.arithmetic_intensity());
    const double cy = y(k.achieved_flops());
    svg.circle(cx, cy, 8.0, plot::Style{.fill = p.surface});
    svg.circle(cx, cy, 6.0, plot::Style{.fill = p.dot_measured});
    svg.text(cx + 10.0, cy + 4.0, k.name,
             plot::TextStyle{.size = 11, .fill = p.text_primary});
  }
  return svg.str();
}

void NodeRoofline::write_svg(const std::string& path) const {
  const std::string content = render_svg();
  FILE* fp = std::fopen(path.c_str(), "wb");
  if (fp == nullptr)
    throw util::Error("cannot open '" + path + "' for writing");
  std::fwrite(content.data(), 1, content.size(), fp);
  std::fclose(fp);
}

}  // namespace wfr::roofline

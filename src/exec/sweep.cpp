#include "exec/sweep.hpp"

#include <cmath>
#include <limits>

#include "core/advisor.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace wfr::exec {

std::string scenario_key(const Scenario& scenario) {
  // Canonical parameters: the JSON serializations are produced by fixed
  // insertion-order emitters, so equal inputs yield equal bytes.  The
  // label and grid coordinates are presentation-only and excluded.
  return scenario.system.to_json().dump() + "\x1f" +
         scenario.workflow.to_json().dump() + "\x1f" +
         std::to_string(scenario.seed);
}

util::Hash128 scenario_hash(const Scenario& scenario) {
  // Same canonical parameter set as scenario_key, digested field-by-field
  // (no JSON materialization on the per-point hot path).  Field order is
  // fixed and strings are length-prefixed, so equal parameters always
  // digest equally.  Extend this whenever SystemSpec or
  // WorkflowCharacterization grows a field.
  util::HashStream h;
  h.str("wfr-scenario-v1");
  const core::SystemSpec& s = scenario.system;
  h.str(s.name);
  h.f64(s.node.peak_flops);
  h.f64(s.node.dram_gbs);
  h.f64(s.node.hbm_gbs);
  h.f64(s.node.pcie_gbs);
  h.f64(s.node.nic_gbs);
  h.i64(s.total_nodes);
  h.f64(s.fs_gbs);
  h.f64(s.external_gbs);
  const core::WorkflowCharacterization& w = scenario.workflow;
  h.str(w.name);
  h.i64(w.total_tasks);
  h.i64(w.parallel_tasks);
  h.i64(w.nodes_per_task);
  h.f64(w.flops_per_node);
  h.f64(w.dram_bytes_per_node);
  h.f64(w.hbm_bytes_per_node);
  h.f64(w.pcie_bytes_per_node);
  h.f64(w.network_bytes_per_task);
  h.f64(w.fs_bytes_per_task);
  h.f64(w.external_bytes_per_task);
  h.f64(w.overhead_seconds_per_task);
  h.f64(w.makespan_seconds);
  h.f64(w.target_makespan_seconds);
  h.u64(scenario.seed);
  return h.digest();
}

ScenarioResult evaluate_model_scenario(const Scenario& scenario) {
  ScenarioResult result;
  result.label = scenario.label;
  result.scenario = scenario;
  auto model = std::make_shared<core::RooflineModel>(
      core::build_model(scenario.system, scenario.workflow));
  result.parallelism_wall = model->parallelism_wall();
  const double wall = static_cast<double>(result.parallelism_wall);
  result.attainable_tps_at_wall = model->attainable_tps(wall);
  const core::Ceiling& binding = model->binding_ceiling(wall);
  result.binding_label = binding.label;
  result.binding_channel = core::channel_name(binding.channel);
  result.slot_seconds = model->binding_ceiling(1.0).seconds_per_task;
  result.campaign_makespan_seconds =
      static_cast<double>(scenario.workflow.total_tasks) /
      result.attainable_tps_at_wall;
  result.model = std::move(model);
  return result;
}

std::vector<ScenarioResult> SweepRunner::run_models(
    const std::vector<Scenario>& scenarios) {
  std::vector<ScenarioResult> results = run<ScenarioResult>(
      scenarios, [](const Scenario& s) { return evaluate_model_scenario(s); });
  // Cache hits carry the first-evaluated point's labeling; restore each
  // requested point's own presentation metadata (the model stays shared).
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    results[i].label = scenarios[i].label;
    results[i].scenario = scenarios[i];
  }
  return results;
}

SweepStats SweepRunner::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  SweepStats snapshot = stats_;
  snapshot.cache_entries = static_cast<std::uint64_t>(lru_.size());
  return snapshot;
}

void SweepRunner::export_metrics(obs::MetricsRegistry& registry) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Delta export: add only what accrued since the previous call, so a
  // shared runner scraped once per request never double-counts.
  registry.counter("sweep.scenarios")
      .increment(static_cast<double>(stats_.scenarios - exported_.scenarios));
  registry.counter("sweep.cache_hits")
      .increment(static_cast<double>(stats_.cache_hits - exported_.cache_hits));
  registry.counter("sweep.cache_misses")
      .increment(
          static_cast<double>(stats_.cache_misses - exported_.cache_misses));
  registry.counter("sweep.cache_evictions")
      .increment(static_cast<double>(stats_.cache_evictions -
                                     exported_.cache_evictions));
  registry.gauge("sweep.cache_entries")
      .set(static_cast<double>(lru_.size()));
  exported_ = stats_;
}

void SweepRunner::complete_entry(const CacheKey& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return;  // unreachable: in-flight entries pinned
  if (cache_capacity_ == 0) {
    // No retention: the entry served concurrent waiters via the shared
    // future; drop it now that evaluation finished.
    cache_.erase(it);
    return;
  }
  it->second.completed = true;
  lru_.push_front(key);
  it->second.lru = lru_.begin();
  while (lru_.size() > cache_capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

SweepRunner::SweepRunner(SweepOptions options)
    : pool_(options.jobs), cache_capacity_(options.cache_capacity) {}

std::string scenario_result_line(const ScenarioResult& result) {
  util::JsonObject line;
  line.set("sweep", util::Json(result.label));
  if (!result.scenario.params.empty()) {
    util::JsonObject params;
    for (const auto& [name, value] : result.scenario.params)
      params.set(name, util::Json(value));
    line.set("params", util::Json(std::move(params)));
  }
  line.set("wall", util::Json(result.parallelism_wall));
  line.set("attainable_tps", util::Json(result.attainable_tps_at_wall));
  line.set("binding", util::Json(result.binding_label));
  line.set("channel", util::Json(result.binding_channel));
  line.set("slot_seconds", util::Json(result.slot_seconds));
  line.set("campaign_makespan_s",
           util::Json(result.campaign_makespan_seconds));
  return util::Json(std::move(line)).dump();
}

namespace {

/// The grid axis names SweepGrid understands.
constexpr const char* kKnownAxes[] = {
    "nodes_per_task", "efficiency",   "parallel_tasks", "total_tasks",
    "total_nodes",    "fs_gbs",       "external_gbs",   "nic_gbs",
    "peak_flops",
};

bool known_axis(const std::string& name) {
  for (const char* axis : kKnownAxes)
    if (name == axis) return true;
  return false;
}

int positive_int_param(const std::string& name, double value) {
  const int rounded = static_cast<int>(std::llround(value));
  util::require(rounded >= 1 && std::abs(value - rounded) < 1e-9,
                "sweep axis '" + name + "' needs positive integers, got " +
                    util::format("%g", value));
  return rounded;
}

}  // namespace

SweepGrid::SweepGrid(core::SystemSpec base_system,
                     core::WorkflowCharacterization base_workflow,
                     std::vector<ParamAxis> axes)
    : base_system_(std::move(base_system)),
      base_workflow_(std::move(base_workflow)),
      axes_(std::move(axes)) {
  for (const ParamAxis& axis : axes_) {
    util::require(known_axis(axis.name),
                  "unknown sweep axis '" + axis.name + "'");
    util::require(!axis.values.empty(),
                  "sweep axis '" + axis.name + "' has no values");
    util::require(points_ <= std::numeric_limits<std::size_t>::max() /
                                 axis.values.size(),
                  "sweep grid size overflows");
    points_ *= axis.values.size();
  }
}

Scenario SweepGrid::at(std::size_t flat) const {
  util::require(flat < points_,
                util::format("sweep grid index %zu out of range (%zu points)",
                             flat, points_));
  Scenario scenario;
  scenario.system = base_system_;
  scenario.workflow = base_workflow_;

  // Row-major cross product: the first axis varies slowest.
  std::size_t remainder = flat;
  std::size_t stride = points_;
  for (const ParamAxis& axis : axes_) {
    stride /= axis.values.size();
    const double value = axis.values[remainder / stride];
    remainder %= stride;
    scenario.params.emplace_back(axis.name, value);
  }

  double intra_factor = 1.0;
  double efficiency = 1.0;
  bool scale_intra = false;
  for (const auto& [name, value] : scenario.params) {
    if (name == "nodes_per_task") {
      intra_factor = value;
      scale_intra = true;
    } else if (name == "efficiency") {
      efficiency = value;
      scale_intra = true;
    } else if (name == "parallel_tasks") {
      scenario.workflow.parallel_tasks = positive_int_param(name, value);
    } else if (name == "total_tasks") {
      scenario.workflow.total_tasks = positive_int_param(name, value);
    } else if (name == "total_nodes") {
      scenario.system.total_nodes = positive_int_param(name, value);
    } else if (name == "fs_gbs") {
      scenario.system.fs_gbs = value;
    } else if (name == "external_gbs") {
      scenario.system.external_gbs = value;
    } else if (name == "nic_gbs") {
      scenario.system.node.nic_gbs = value;
    } else if (name == "peak_flops") {
      scenario.system.node.peak_flops = value;
    }
  }
  if (scale_intra) {
    scenario.workflow = core::scale_intra_task_parallelism(
        scenario.workflow, intra_factor, efficiency);
  }

  std::string label;
  for (const auto& [name, value] : scenario.params) {
    if (!label.empty()) label += " ";
    label += name + "=" + util::format("%g", value);
  }
  scenario.label = label.empty() ? base_workflow_.name : label;
  return scenario;
}

util::Hash128 SweepGrid::grid_hash() const {
  // The grid identity: base inputs plus axes.  The JSON dumps are
  // insertion-order-stable canonical serializations; this runs once per
  // sweep, not per point.
  util::HashStream h;
  h.str("wfr-sweep-grid-v1");
  h.str(base_system_.to_json().dump());
  h.str(base_workflow_.to_json().dump());
  h.u64(axes_.size());
  for (const ParamAxis& axis : axes_) {
    h.str(axis.name);
    h.u64(axis.values.size());
    for (const double value : axis.values) h.f64(value);
  }
  return h.digest();
}

std::vector<Scenario> expand_grid(const core::SystemSpec& base_system,
                                  const core::WorkflowCharacterization& base,
                                  const std::vector<ParamAxis>& axes) {
  const SweepGrid grid(base_system, base, axes);
  std::vector<Scenario> scenarios;
  scenarios.reserve(grid.size());
  for (std::size_t flat = 0; flat < grid.size(); ++flat)
    scenarios.push_back(grid.at(flat));
  return scenarios;
}

namespace {

constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();

/// Shared state of one streaming fan-out: a claim frontier throttled
/// against the emit frontier (bounded reorder window), a ring of
/// completed-but-unemitted rows, and first-by-index error capture.
struct StreamState {
  std::mutex mutex;
  std::condition_variable can_claim;
  std::condition_variable done;
  std::size_t next_claim = 0;
  std::size_t emit_next = 0;
  std::size_t end = 0;
  std::size_t window = 1;
  std::vector<ScenarioResult> ring;
  std::vector<char> ready;
  bool emitting = false;
  std::size_t live_runners = 0;
  std::exception_ptr error;
  std::size_t error_index = kNoError;
};

void record_stream_error(StreamState& state, std::size_t index,
                         std::exception_ptr error) {
  std::unique_lock<std::mutex> lock(state.mutex);
  if (index < state.error_index) {
    state.error_index = index;
    state.error = std::move(error);
  }
  state.can_claim.notify_all();
}

}  // namespace

void SweepRunner::stream_models(const SweepGrid& grid,
                                const StreamOptions& options,
                                const RowSink& sink) {
  util::require(static_cast<bool>(sink), "stream_models needs a sink");
  util::require(options.reorder_window >= 1,
                "stream reorder_window must be >= 1");
  util::require(options.start_row <= grid.size(),
                util::format("stream start_row %zu beyond grid (%zu points)",
                             options.start_row, grid.size()));
  const std::size_t end = grid.size();
  if (options.start_row >= end) return;

  auto evaluate = [this](const Scenario& scenario) {
    return evaluate_cached<ScenarioResult>(scenario, [](const Scenario& s) {
      return evaluate_model_scenario(s);
    });
  };
  // A cache hit returns the first-evaluated point's presentation
  // metadata; restore the requested row's own label (the run_models
  // pattern, docs/PARALLELISM.md).
  auto evaluate_row = [&](std::size_t row) {
    Scenario scenario = grid.at(row);
    ScenarioResult result = evaluate(scenario);
    result.label = scenario.label;
    result.scenario = std::move(scenario);
    return result;
  };

  // Single-job pools stream inline: claim order == emit order, no window
  // bookkeeping, exceptions propagate at the failing row.
  if (pool_.jobs() == 1) {
    for (std::size_t row = options.start_row; row < end; ++row)
      sink(row, evaluate_row(row));
    return;
  }

  StreamState state;
  state.next_claim = options.start_row;
  state.emit_next = options.start_row;
  state.end = end;
  state.window = options.reorder_window;
  state.ring.resize(state.window);
  state.ready.assign(state.window, 0);

  auto worker = [&] {
    for (;;) {
      std::size_t row;
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        state.can_claim.wait(lock, [&] {
          return state.next_claim >= state.end ||
                 state.next_claim < state.emit_next + state.window ||
                 state.error_index != kNoError;
        });
        if (state.next_claim >= state.end || state.error_index != kNoError)
          break;
        row = state.next_claim++;
      }
      ScenarioResult result;
      try {
        result = evaluate_row(row);
      } catch (...) {
        record_stream_error(state, row, std::current_exception());
        continue;
      }
      std::unique_lock<std::mutex> lock(state.mutex);
      state.ring[row % state.window] = std::move(result);
      state.ready[row % state.window] = 1;
      // Drain the contiguous head.  Only one worker emits at a time and
      // rows leave in strictly increasing order; the sink runs unlocked
      // so evaluation continues behind it.
      while (!state.emitting && state.error_index == kNoError &&
             state.emit_next < state.end &&
             state.ready[state.emit_next % state.window]) {
        state.emitting = true;
        const std::size_t emit_row = state.emit_next;
        ScenarioResult value =
            std::move(state.ring[emit_row % state.window]);
        state.ring[emit_row % state.window] = ScenarioResult{};
        state.ready[emit_row % state.window] = 0;
        lock.unlock();
        std::exception_ptr sink_error;
        try {
          sink(emit_row, value);
        } catch (...) {
          sink_error = std::current_exception();
        }
        lock.lock();
        state.emitting = false;
        if (sink_error) {
          if (emit_row < state.error_index) {
            state.error_index = emit_row;
            state.error = std::move(sink_error);
          }
          state.can_claim.notify_all();
          break;
        }
        ++state.emit_next;
        state.can_claim.notify_all();
      }
    }
    std::unique_lock<std::mutex> lock(state.mutex);
    if (--state.live_runners == 0) state.done.notify_all();
  };

  const std::size_t rows = end - options.start_row;
  const std::size_t runners =
      std::min<std::size_t>(static_cast<std::size_t>(pool_.jobs()), rows);
  state.live_runners = runners;
  for (std::size_t r = 0; r < runners; ++r) pool_.submit(worker);

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.live_runners == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace wfr::exec

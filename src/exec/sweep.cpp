#include "exec/sweep.hpp"

#include <cmath>

#include "core/advisor.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace wfr::exec {

std::string scenario_key(const Scenario& scenario) {
  // Canonical parameters: the JSON serializations are produced by fixed
  // insertion-order emitters, so equal inputs yield equal bytes.  The
  // label and grid coordinates are presentation-only and excluded.
  return scenario.system.to_json().dump() + "\x1f" +
         scenario.workflow.to_json().dump() + "\x1f" +
         std::to_string(scenario.seed);
}

ScenarioResult evaluate_model_scenario(const Scenario& scenario) {
  ScenarioResult result;
  result.label = scenario.label;
  result.scenario = scenario;
  auto model = std::make_shared<core::RooflineModel>(
      core::build_model(scenario.system, scenario.workflow));
  result.parallelism_wall = model->parallelism_wall();
  const double wall = static_cast<double>(result.parallelism_wall);
  result.attainable_tps_at_wall = model->attainable_tps(wall);
  const core::Ceiling& binding = model->binding_ceiling(wall);
  result.binding_label = binding.label;
  result.binding_channel = core::channel_name(binding.channel);
  result.slot_seconds = model->binding_ceiling(1.0).seconds_per_task;
  result.campaign_makespan_seconds =
      static_cast<double>(scenario.workflow.total_tasks) /
      result.attainable_tps_at_wall;
  result.model = std::move(model);
  return result;
}

std::vector<ScenarioResult> SweepRunner::run_models(
    const std::vector<Scenario>& scenarios) {
  std::vector<ScenarioResult> results = run<ScenarioResult>(
      scenarios, [](const Scenario& s) { return evaluate_model_scenario(s); });
  // Cache hits carry the first-evaluated point's labeling; restore each
  // requested point's own presentation metadata (the model stays shared).
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    results[i].label = scenarios[i].label;
    results[i].scenario = scenarios[i];
  }
  return results;
}

void SweepRunner::export_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("sweep.scenarios")
      .increment(static_cast<double>(stats_.scenarios));
  registry.counter("sweep.cache_hits")
      .increment(static_cast<double>(stats_.cache_hits));
  registry.counter("sweep.cache_misses")
      .increment(static_cast<double>(stats_.cache_misses));
}

SweepRunner::SweepRunner(SweepOptions options) : pool_(options.jobs) {}

std::string scenario_result_line(const ScenarioResult& result) {
  util::JsonObject line;
  line.set("sweep", util::Json(result.label));
  if (!result.scenario.params.empty()) {
    util::JsonObject params;
    for (const auto& [name, value] : result.scenario.params)
      params.set(name, util::Json(value));
    line.set("params", util::Json(std::move(params)));
  }
  line.set("wall", util::Json(result.parallelism_wall));
  line.set("attainable_tps", util::Json(result.attainable_tps_at_wall));
  line.set("binding", util::Json(result.binding_label));
  line.set("channel", util::Json(result.binding_channel));
  line.set("slot_seconds", util::Json(result.slot_seconds));
  line.set("campaign_makespan_s",
           util::Json(result.campaign_makespan_seconds));
  return util::Json(std::move(line)).dump();
}

namespace {

/// The grid axis names expand_grid understands.
constexpr const char* kKnownAxes[] = {
    "nodes_per_task", "efficiency",   "parallel_tasks", "total_tasks",
    "total_nodes",    "fs_gbs",       "external_gbs",   "nic_gbs",
    "peak_flops",
};

bool known_axis(const std::string& name) {
  for (const char* axis : kKnownAxes)
    if (name == axis) return true;
  return false;
}

int positive_int_param(const std::string& name, double value) {
  const int rounded = static_cast<int>(std::llround(value));
  util::require(rounded >= 1 && std::abs(value - rounded) < 1e-9,
                "sweep axis '" + name + "' needs positive integers, got " +
                    util::format("%g", value));
  return rounded;
}

}  // namespace

std::vector<Scenario> expand_grid(const core::SystemSpec& base_system,
                                  const core::WorkflowCharacterization& base,
                                  const std::vector<ParamAxis>& axes) {
  std::size_t points = 1;
  for (const ParamAxis& axis : axes) {
    util::require(known_axis(axis.name),
                  "unknown sweep axis '" + axis.name + "'");
    util::require(!axis.values.empty(),
                  "sweep axis '" + axis.name + "' has no values");
    points *= axis.values.size();
  }

  std::vector<Scenario> scenarios;
  scenarios.reserve(points);
  // Row-major cross product: the first axis varies slowest.
  for (std::size_t flat = 0; flat < points; ++flat) {
    Scenario scenario;
    scenario.system = base_system;
    scenario.workflow = base;

    std::size_t remainder = flat;
    std::size_t stride = points;
    for (const ParamAxis& axis : axes) {
      stride /= axis.values.size();
      const double value = axis.values[remainder / stride];
      remainder %= stride;
      scenario.params.emplace_back(axis.name, value);
    }

    double intra_factor = 1.0;
    double efficiency = 1.0;
    bool scale_intra = false;
    for (const auto& [name, value] : scenario.params) {
      if (name == "nodes_per_task") {
        intra_factor = value;
        scale_intra = true;
      } else if (name == "efficiency") {
        efficiency = value;
        scale_intra = true;
      } else if (name == "parallel_tasks") {
        scenario.workflow.parallel_tasks = positive_int_param(name, value);
      } else if (name == "total_tasks") {
        scenario.workflow.total_tasks = positive_int_param(name, value);
      } else if (name == "total_nodes") {
        scenario.system.total_nodes = positive_int_param(name, value);
      } else if (name == "fs_gbs") {
        scenario.system.fs_gbs = value;
      } else if (name == "external_gbs") {
        scenario.system.external_gbs = value;
      } else if (name == "nic_gbs") {
        scenario.system.node.nic_gbs = value;
      } else if (name == "peak_flops") {
        scenario.system.node.peak_flops = value;
      }
    }
    if (scale_intra) {
      scenario.workflow = core::scale_intra_task_parallelism(
          scenario.workflow, intra_factor, efficiency);
    }

    std::string label;
    for (const auto& [name, value] : scenario.params) {
      if (!label.empty()) label += " ";
      label += name + "=" + util::format("%g", value);
    }
    scenario.label = label.empty() ? base.name : label;
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

}  // namespace wfr::exec

#include "exec/sweep.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "core/advisor.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace wfr::exec {

std::string scenario_key(const Scenario& scenario) {
  // Canonical parameters: the JSON serializations are produced by fixed
  // insertion-order emitters, so equal inputs yield equal bytes.  The
  // label and grid coordinates are presentation-only and excluded.
  return scenario.system.to_json().dump() + "\x1f" +
         scenario.workflow.to_json().dump() + "\x1f" +
         std::to_string(scenario.seed);
}

util::Hash128 scenario_hash(const Scenario& scenario) {
  // Same canonical parameter set as scenario_key, digested field-by-field
  // (no JSON materialization on the per-point hot path).  Field order is
  // fixed and strings are length-prefixed, so equal parameters always
  // digest equally.  Extend this whenever SystemSpec or
  // WorkflowCharacterization grows a field.
  util::HashStream h;
  h.str("wfr-scenario-v1");
  const core::SystemSpec& s = scenario.system;
  h.str(s.name);
  h.f64(s.node.peak_flops);
  h.f64(s.node.dram_gbs);
  h.f64(s.node.hbm_gbs);
  h.f64(s.node.pcie_gbs);
  h.f64(s.node.nic_gbs);
  h.i64(s.total_nodes);
  h.f64(s.fs_gbs);
  h.f64(s.external_gbs);
  const core::WorkflowCharacterization& w = scenario.workflow;
  h.str(w.name);
  h.i64(w.total_tasks);
  h.i64(w.parallel_tasks);
  h.i64(w.nodes_per_task);
  h.f64(w.flops_per_node);
  h.f64(w.dram_bytes_per_node);
  h.f64(w.hbm_bytes_per_node);
  h.f64(w.pcie_bytes_per_node);
  h.f64(w.network_bytes_per_task);
  h.f64(w.fs_bytes_per_task);
  h.f64(w.external_bytes_per_task);
  h.f64(w.overhead_seconds_per_task);
  h.f64(w.makespan_seconds);
  h.f64(w.target_makespan_seconds);
  h.u64(scenario.seed);
  return h.digest();
}

ModelSummary evaluate_model_summary(const Scenario& scenario,
                                    std::vector<core::CeilingSpec>& scratch) {
  // Same validation order as the RooflineModel constructor build_model
  // funnels through, so both paths throw identical errors.
  scenario.system.validate();
  scenario.workflow.validate();
  core::compute_ceilings(scenario.system, scenario.workflow, scratch);

  // compute_ceilings always appends exactly one wall (it throws when the
  // tasks don't fit), so the scans below match RooflineModel's
  // parallelism_wall / binding_ceiling semantics: min wall, strict < so
  // ties keep the first ceiling.
  int wall = std::numeric_limits<int>::max();
  for (const core::CeilingSpec& c : scratch)
    if (c.kind == core::CeilingKind::kWall)
      wall = std::min(wall, c.max_parallel_tasks);

  const double wall_p = static_cast<double>(wall);
  const core::CeilingSpec* binding = nullptr;
  const core::CeilingSpec* binding_at_one = nullptr;
  double best = std::numeric_limits<double>::infinity();
  double best_at_one = std::numeric_limits<double>::infinity();
  for (const core::CeilingSpec& c : scratch) {
    if (c.kind == core::CeilingKind::kWall) continue;
    const double tps = c.tps_at(wall_p);
    if (tps < best) {
      best = tps;
      binding = &c;
    }
    const double tps_one = c.tps_at(1.0);
    if (tps_one < best_at_one) {
      best_at_one = tps_one;
      binding_at_one = &c;
    }
  }
  if (binding == nullptr)
    throw util::InvalidArgument(
        "model has no throughput ceilings (only walls)");

  ModelSummary summary;
  summary.parallelism_wall = wall;
  summary.attainable_tps_at_wall = best;
  summary.binding_label =
      core::ceiling_label(*binding, scenario.system, scenario.workflow);
  summary.binding_channel = core::channel_name(binding->channel);
  summary.slot_seconds = binding_at_one->seconds_per_task;
  summary.campaign_makespan_seconds =
      static_cast<double>(scenario.workflow.total_tasks) /
      summary.attainable_tps_at_wall;
  return summary;
}

ScenarioResult evaluate_model_scenario(const Scenario& scenario) {
  ScenarioResult result;
  result.label = scenario.label;
  result.scenario = scenario;
  auto model = std::make_shared<core::RooflineModel>(
      core::build_model(scenario.system, scenario.workflow));
  result.parallelism_wall = model->parallelism_wall();
  const double wall = static_cast<double>(result.parallelism_wall);
  result.attainable_tps_at_wall = model->attainable_tps(wall);
  const core::Ceiling& binding = model->binding_ceiling(wall);
  result.binding_label = binding.label;
  result.binding_channel = core::channel_name(binding.channel);
  result.slot_seconds = model->binding_ceiling(1.0).seconds_per_task;
  result.campaign_makespan_seconds =
      static_cast<double>(scenario.workflow.total_tasks) /
      result.attainable_tps_at_wall;
  result.model = std::move(model);
  return result;
}

std::vector<ScenarioResult> SweepRunner::run_models(
    const std::vector<Scenario>& scenarios) {
  std::vector<ScenarioResult> results = run<ScenarioResult>(
      scenarios, [](const Scenario& s) { return evaluate_model_scenario(s); });
  // Cache hits carry the first-evaluated point's labeling; restore each
  // requested point's own presentation metadata (the model stays shared).
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    results[i].label = scenarios[i].label;
    results[i].scenario = scenarios[i];
  }
  return results;
}

SweepStats SweepRunner::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  SweepStats snapshot = stats_;
  snapshot.cache_entries = static_cast<std::uint64_t>(lru_.size());
  return snapshot;
}

void SweepRunner::export_metrics(obs::MetricsRegistry& registry) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Delta export: add only what accrued since the previous call, so a
  // shared runner scraped once per request never double-counts.
  registry.counter("sweep.scenarios")
      .increment(static_cast<double>(stats_.scenarios - exported_.scenarios));
  registry.counter("sweep.cache_hits")
      .increment(static_cast<double>(stats_.cache_hits - exported_.cache_hits));
  registry.counter("sweep.cache_misses")
      .increment(
          static_cast<double>(stats_.cache_misses - exported_.cache_misses));
  registry.counter("sweep.cache_evictions")
      .increment(static_cast<double>(stats_.cache_evictions -
                                     exported_.cache_evictions));
  registry.gauge("sweep.cache_entries")
      .set(static_cast<double>(lru_.size()));
  exported_ = stats_;
}

void SweepRunner::complete_entry(const CacheKey& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) return;  // unreachable: in-flight entries pinned
  if (cache_capacity_ == 0) {
    // No retention: the entry served concurrent waiters via the shared
    // future; drop it now that evaluation finished.
    cache_.erase(it);
    return;
  }
  it->second.completed = true;
  lru_.push_front(key);
  it->second.lru = lru_.begin();
  while (lru_.size() > cache_capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.cache_evictions;
  }
}

SweepRunner::SweepRunner(SweepOptions options)
    : pool_(options.jobs), cache_capacity_(options.cache_capacity) {}

void append_result_line(
    std::string& out, std::string_view label,
    const std::vector<std::pair<std::string, double>>& params, int wall,
    double attainable_tps, std::string_view binding, std::string_view channel,
    double slot_seconds, double campaign_makespan_s) {
  // Field order, escaping, and number formatting mirror the Json
  // serializer exactly (json_append_escaped + format_double, the same
  // routines Json::dump uses), so this writer and a JsonObject built from
  // the same fields emit identical bytes.
  out += "{\"sweep\":";
  util::json_append_escaped(out, label);
  if (!params.empty()) {
    out += ",\"params\":{";
    bool first = true;
    for (const auto& [name, value] : params) {
      if (!first) out += ',';
      first = false;
      util::json_append_escaped(out, name);
      out += ':';
      util::append_double(out, value);
    }
    out += '}';
  }
  out += ",\"wall\":";
  util::append_double(out, static_cast<double>(wall));
  out += ",\"attainable_tps\":";
  util::append_double(out, attainable_tps);
  out += ",\"binding\":";
  util::json_append_escaped(out, binding);
  out += ",\"channel\":";
  util::json_append_escaped(out, channel);
  out += ",\"slot_seconds\":";
  util::append_double(out, slot_seconds);
  out += ",\"campaign_makespan_s\":";
  util::append_double(out, campaign_makespan_s);
  out += '}';
}

std::string scenario_result_line(const ScenarioResult& result) {
  std::string line;
  append_result_line(line, result.label, result.scenario.params,
                     result.parallelism_wall, result.attainable_tps_at_wall,
                     result.binding_label, result.binding_channel,
                     result.slot_seconds, result.campaign_makespan_seconds);
  return line;
}

namespace {

/// The grid axis names SweepGrid understands.
constexpr const char* kKnownAxes[] = {
    "nodes_per_task", "efficiency",   "parallel_tasks", "total_tasks",
    "total_nodes",    "fs_gbs",       "external_gbs",   "nic_gbs",
    "peak_flops",
};

bool known_axis(const std::string& name) {
  for (const char* axis : kKnownAxes)
    if (name == axis) return true;
  return false;
}

// Error text is built only on the failing path — this runs per integer
// axis per grid point.
int positive_int_param(const std::string& name, double value) {
  const int rounded = static_cast<int>(std::llround(value));
  if (!(rounded >= 1 && std::abs(value - rounded) < 1e-9))
    throw util::InvalidArgument(
        "sweep axis '" + name + "' needs positive integers, got " +
        util::format("%g", value));
  return rounded;
}

}  // namespace

SweepGrid::SweepGrid(core::SystemSpec base_system,
                     core::WorkflowCharacterization base_workflow,
                     std::vector<ParamAxis> axes)
    : base_system_(std::move(base_system)),
      base_workflow_(std::move(base_workflow)),
      axes_(std::move(axes)) {
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    const ParamAxis& axis = axes_[i];
    util::require(known_axis(axis.name),
                  "unknown sweep axis '" + axis.name + "'");
    util::require(!axis.values.empty(),
                  "sweep axis '" + axis.name + "' has no values");
    // A repeated axis would emit duplicate JSON keys in params{} — reject
    // it here, where the message can still name the axis.
    for (std::size_t j = 0; j < i; ++j)
      util::require(axes_[j].name != axis.name,
                    "duplicate sweep axis '" + axis.name + "'");
    util::require(points_ <= std::numeric_limits<std::size_t>::max() /
                                 axis.values.size(),
                  "sweep grid size overflows");
    points_ *= axis.values.size();
  }
}

Scenario SweepGrid::at(std::size_t flat) const {
  Scenario scenario;
  at_into(flat, scenario);
  return scenario;
}

void SweepGrid::at_into(std::size_t flat, Scenario& out) const {
  if (flat >= points_)
    throw util::InvalidArgument(
        util::format("sweep grid index %zu out of range (%zu points)", flat,
                     points_));
  out.system = base_system_;
  out.workflow = base_workflow_;
  out.seed = 0;

  // Row-major cross product: the first axis varies slowest.  The params
  // vector is resized (not rebuilt) so its name strings keep their
  // capacity across points.
  out.params.resize(axes_.size());
  std::size_t remainder = flat;
  std::size_t stride = points_;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    const ParamAxis& axis = axes_[i];
    stride /= axis.values.size();
    out.params[i].first = axis.name;
    out.params[i].second = axis.values[remainder / stride];
    remainder %= stride;
  }

  double intra_factor = 1.0;
  double efficiency = 1.0;
  bool scale_intra = false;
  for (const auto& [name, value] : out.params) {
    if (name == "nodes_per_task") {
      intra_factor = value;
      scale_intra = true;
    } else if (name == "efficiency") {
      efficiency = value;
      scale_intra = true;
    } else if (name == "parallel_tasks") {
      out.workflow.parallel_tasks = positive_int_param(name, value);
    } else if (name == "total_tasks") {
      out.workflow.total_tasks = positive_int_param(name, value);
    } else if (name == "total_nodes") {
      out.system.total_nodes = positive_int_param(name, value);
    } else if (name == "fs_gbs") {
      out.system.fs_gbs = value;
    } else if (name == "external_gbs") {
      out.system.external_gbs = value;
    } else if (name == "nic_gbs") {
      out.system.node.nic_gbs = value;
    } else if (name == "peak_flops") {
      out.system.node.peak_flops = value;
    }
  }
  if (scale_intra) {
    out.workflow = core::scale_intra_task_parallelism(out.workflow,
                                                      intra_factor,
                                                      efficiency);
  }

  out.label.clear();
  char value_text[32];
  for (const auto& [name, value] : out.params) {
    if (!out.label.empty()) out.label += ' ';
    out.label += name;
    out.label += '=';
    // The same "%g" bytes util::format produced here before; snprintf
    // into a stack buffer keeps the per-point label free of temporaries.
    std::snprintf(value_text, sizeof(value_text), "%g", value);
    out.label += value_text;
  }
  if (out.label.empty()) out.label = base_workflow_.name;
}

util::Hash128 SweepGrid::grid_hash() const {
  // The grid identity: base inputs plus axes.  The JSON dumps are
  // insertion-order-stable canonical serializations; this runs once per
  // sweep, not per point.
  util::HashStream h;
  h.str("wfr-sweep-grid-v1");
  h.str(base_system_.to_json().dump());
  h.str(base_workflow_.to_json().dump());
  h.u64(axes_.size());
  for (const ParamAxis& axis : axes_) {
    h.str(axis.name);
    h.u64(axis.values.size());
    for (const double value : axis.values) h.f64(value);
  }
  return h.digest();
}

std::vector<Scenario> expand_grid(const core::SystemSpec& base_system,
                                  const core::WorkflowCharacterization& base,
                                  const std::vector<ParamAxis>& axes) {
  const SweepGrid grid(base_system, base, axes);
  std::vector<Scenario> scenarios;
  scenarios.reserve(grid.size());
  for (std::size_t flat = 0; flat < grid.size(); ++flat)
    scenarios.push_back(grid.at(flat));
  return scenarios;
}

namespace {

constexpr std::size_t kNoError = std::numeric_limits<std::size_t>::max();

/// Shared state of one streaming fan-out: a claim frontier throttled
/// against the emit frontier (bounded reorder window), a ring of
/// completed-but-unemitted rows, and first-by-index error capture.  Rows
/// circulate by swap — worker scratch into the ring, ring slot into the
/// emit scratch — so Row heap capacity (NDJSON buffers, scenario
/// strings) is recycled instead of reallocated every row.
template <typename Row>
struct StreamState {
  std::mutex mutex;
  std::condition_variable can_claim;
  std::condition_variable done;
  std::size_t next_claim = 0;
  std::size_t emit_next = 0;
  std::size_t end = 0;
  std::size_t window = 1;
  std::vector<Row> ring;
  std::vector<char> ready;
  /// The row currently handed to emit (single emitter; reused).
  Row emit_value;
  bool emitting = false;
  std::size_t live_runners = 0;
  std::exception_ptr error;
  std::size_t error_index = kNoError;
};

template <typename Row>
void record_stream_error(StreamState<Row>& state, std::size_t index,
                         std::exception_ptr error) {
  std::unique_lock<std::mutex> lock(state.mutex);
  if (index < state.error_index) {
    state.error_index = index;
    state.error = std::move(error);
  }
  state.can_claim.notify_all();
}

/// The streaming engine shared by stream_models and stream_lines: claim
/// rows [start, end) against the emit frontier, evaluate out of order,
/// emit strictly in order with a single emitter and no end-of-stream
/// barrier.  `make_eval()` runs once per worker and returns that
/// worker's eval(row, Row&) — per-worker scratch (arenas, reused
/// scenarios) lives in the returned closure.  `emit(row, Row&)` observes
/// the RowSink protocol.
template <typename Row, typename MakeEval, typename Emit>
void run_stream_engine(ThreadPool& pool, std::size_t start, std::size_t end,
                       std::size_t window, const MakeEval& make_eval,
                       const Emit& emit) {
  if (start >= end) return;

  // Single-job pools stream inline: claim order == emit order, no window
  // bookkeeping, exceptions propagate at the failing row, one Row of
  // scratch for the whole run.
  if (pool.jobs() == 1) {
    auto eval = make_eval();
    Row value{};
    for (std::size_t row = start; row < end; ++row) {
      eval(row, value);
      emit(row, value);
    }
    return;
  }

  StreamState<Row> state;
  state.next_claim = start;
  state.emit_next = start;
  state.end = end;
  state.window = window;
  state.ring.resize(state.window);
  state.ready.assign(state.window, 0);

  auto worker = [&] {
    auto eval = make_eval();
    Row scratch{};
    for (;;) {
      std::size_t row;
      {
        std::unique_lock<std::mutex> lock(state.mutex);
        state.can_claim.wait(lock, [&] {
          return state.next_claim >= state.end ||
                 state.next_claim < state.emit_next + state.window ||
                 state.error_index != kNoError;
        });
        if (state.next_claim >= state.end || state.error_index != kNoError)
          break;
        row = state.next_claim++;
      }
      try {
        eval(row, scratch);
      } catch (...) {
        record_stream_error(state, row, std::current_exception());
        continue;
      }
      std::unique_lock<std::mutex> lock(state.mutex);
      using std::swap;
      swap(state.ring[row % state.window], scratch);
      state.ready[row % state.window] = 1;
      // Drain the contiguous head.  Only one worker emits at a time and
      // rows leave in strictly increasing order; emit runs unlocked so
      // evaluation continues behind it.
      while (!state.emitting && state.error_index == kNoError &&
             state.emit_next < state.end &&
             state.ready[state.emit_next % state.window]) {
        state.emitting = true;
        const std::size_t emit_row = state.emit_next;
        swap(state.ring[emit_row % state.window], state.emit_value);
        state.ready[emit_row % state.window] = 0;
        lock.unlock();
        std::exception_ptr sink_error;
        try {
          emit(emit_row, state.emit_value);
        } catch (...) {
          sink_error = std::current_exception();
        }
        lock.lock();
        state.emitting = false;
        if (sink_error) {
          if (emit_row < state.error_index) {
            state.error_index = emit_row;
            state.error = std::move(sink_error);
          }
          state.can_claim.notify_all();
          break;
        }
        ++state.emit_next;
        state.can_claim.notify_all();
      }
    }
    std::unique_lock<std::mutex> lock(state.mutex);
    if (--state.live_runners == 0) state.done.notify_all();
  };

  const std::size_t rows = end - start;
  const std::size_t runners =
      std::min<std::size_t>(static_cast<std::size_t>(pool.jobs()), rows);
  state.live_runners = runners;
  for (std::size_t r = 0; r < runners; ++r) pool.submit(worker);

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.live_runners == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

/// Shared option validation for the streaming entry points; returns the
/// number of shard-local rows.
std::size_t check_stream_options(const SweepGrid& grid,
                                 const StreamOptions& options,
                                 bool have_sink, const char* who) {
  util::require(have_sink, std::string(who) + " needs a sink");
  util::require(options.reorder_window >= 1,
                "stream reorder_window must be >= 1");
  options.shard.validate();
  const std::size_t rows = options.shard.rows(grid.size());
  if (options.shard.sharded()) {
    util::require(options.start_row <= rows,
                  util::format("stream start_row %zu beyond shard (%zu rows)",
                               options.start_row, rows));
  } else {
    util::require(options.start_row <= rows,
                  util::format("stream start_row %zu beyond grid (%zu points)",
                               options.start_row, rows));
  }
  return rows;
}

}  // namespace

void SweepRunner::stream_models(const SweepGrid& grid,
                                const StreamOptions& options,
                                const RowSink& sink) {
  const std::size_t rows = check_stream_options(
      grid, options, static_cast<bool>(sink), "stream_models");
  const std::size_t total = grid.size();
  const ShardSpec shard = options.shard;

  auto make_eval = [this, &grid, shard, total] {
    std::function<ScenarioResult(const Scenario&)> eval_model =
        [](const Scenario& s) { return evaluate_model_scenario(s); };
    return [this, &grid, shard, total,
            eval_model = std::move(eval_model)](std::size_t row,
                                                ScenarioResult& out) {
      Scenario scenario = grid.at(shard.global_row(row, total));
      out = evaluate_cached<ScenarioResult>(scenario, eval_model);
      // A cache hit returns the first-evaluated point's presentation
      // metadata; restore the requested row's own label (the run_models
      // pattern, docs/PARALLELISM.md).
      out.label = scenario.label;
      out.scenario = std::move(scenario);
    };
  };
  run_stream_engine<ScenarioResult>(
      pool_, options.start_row, rows, options.reorder_window, make_eval,
      [&sink](std::size_t row, ScenarioResult& value) { sink(row, value); });
}

void SweepRunner::stream_lines(const SweepGrid& grid,
                               const StreamOptions& options,
                               const LineSink& sink) {
  const std::size_t rows = check_stream_options(
      grid, options, static_cast<bool>(sink), "stream_lines");
  const std::size_t total = grid.size();
  const ShardSpec shard = options.shard;

  // Per-worker arena: the materialized scenario and the label-free
  // ceiling set keep their heap capacity across every point the worker
  // evaluates; the only per-point string the hot path creates is the
  // binding label inside the memoized summary.
  struct Arena {
    Scenario scenario;
    std::vector<core::CeilingSpec> ceilings;
  };
  auto make_eval = [this, &grid, shard, total] {
    auto arena = std::make_shared<Arena>();
    std::function<ModelSummary(const Scenario&)> eval_summary =
        [arena](const Scenario& s) {
          return evaluate_model_summary(s, arena->ceilings);
        };
    return [this, &grid, shard, total, arena,
            eval_summary = std::move(eval_summary)](std::size_t row,
                                                    std::string& out) {
      grid.at_into(shard.global_row(row, total), arena->scenario);
      const ModelSummary summary =
          evaluate_cached<ModelSummary>(arena->scenario, eval_summary);
      out.clear();
      append_result_line(out, arena->scenario.label, arena->scenario.params,
                         summary.parallelism_wall,
                         summary.attainable_tps_at_wall, summary.binding_label,
                         summary.binding_channel, summary.slot_seconds,
                         summary.campaign_makespan_seconds);
      out += '\n';
    };
  };
  run_stream_engine<std::string>(
      pool_, options.start_row, rows, options.reorder_window, make_eval,
      [&sink](std::size_t row, std::string& line) {
        sink(row, std::string_view(line));
      });
}

}  // namespace wfr::exec

#pragma once
// Deterministic sharding of a SweepGrid across N worker processes.
//
// A shard is a pure function of the flat row index — no coordination, no
// shared state — so N processes (or N `wfr serve` backends) can each
// stream their slice independently and a merger can re-assemble the
// per-shard NDJSON streams byte-identical to the single-process
// `--stream` path:
//   * stride mode: global row g belongs to shard g % count.  Every shard
//     walks the whole grid's parameter space, so per-shard progress rates
//     stay uniform even when cost varies along an axis.
//   * block mode: rows are split into `count` contiguous blocks of
//     ceil(total / count); shard i owns [i*block, min((i+1)*block, total)).
//     Friendlier to the memo cache when neighboring rows share parameters.
//
// Each shard checkpoints independently (a shard-local prefix range — see
// exec/checkpoint.hpp) because its emission order is strictly increasing
// in the shard-local row index.  The merge is pure re-interleaving: read
// one line per global row from the owning shard's part file, in global
// order.  No parsing, no buffering beyond one line.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace wfr::exec {

enum class ShardMode { kStride, kBlock };

/// Stable lowercase mode name ("stride" / "block").
const char* shard_mode_name(ShardMode mode);

/// Parses a mode name; throws InvalidArgument on anything else.
ShardMode parse_shard_mode(const std::string& name);

/// One shard of a sharded sweep: which slice of the grid this worker
/// owns.  The default (count 1, index 0) is the unsharded identity —
/// every row belongs to it.
struct ShardSpec {
  int count = 1;
  int index = 0;
  ShardMode mode = ShardMode::kStride;

  /// True when the grid is actually split (count > 1).
  bool sharded() const { return count > 1; }

  /// Throws InvalidArgument unless count >= 1 and 0 <= index < count.
  void validate() const;

  /// Number of rows of a `total`-row grid owned by this shard.
  std::size_t rows(std::size_t total) const;

  /// Global flat row index of this shard's `local`-th row.  Strictly
  /// increasing in `local`, so a shard's emission order is a prefix
  /// range in shard-local coordinates.  `local` must be < rows(total).
  std::size_t global_row(std::size_t local, std::size_t total) const;

  /// The shard owning global row `global` of a `total`-row grid (the
  /// inverse of global_row; depends only on count and mode).
  int shard_of(std::size_t global, std::size_t total) const;
};

/// Re-interleaves per-shard NDJSON part files into `out` in global row
/// order: paths[i] must hold exactly shard i's rows (count = paths.size(),
/// `mode` as during the run), one '\n'-terminated line per row.  The
/// merged bytes are identical to a single-process stream of the same
/// grid.  Throws InvalidArgument naming the offending path when a part
/// file is missing, short a row, missing its final newline, or has bytes
/// past its last expected row.
void merge_shard_outputs(const std::vector<std::string>& paths,
                         ShardMode mode, std::size_t total_rows,
                         std::ostream& out);

}  // namespace wfr::exec

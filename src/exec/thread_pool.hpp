#pragma once
// Parallel scenario execution: a fixed-size worker pool plus the
// deterministic fan-out primitives every multi-scenario path in this
// library builds on (sweeps, gallery benches, autotuner warm-up batches).
//
// Determinism contract (docs/PARALLELISM.md):
//   * Results are written into pre-sized slots by scenario index — never
//     appended in completion order — so the output of parallel_map /
//     parallel_for is independent of scheduling.
//   * Any per-scenario randomness must be seeded from the scenario index
//     (see scenario_seed), never from a worker id or a shared generator,
//     so streams are identical at jobs=1 and jobs=N.
//   * Reductions over the results happen on the calling thread in index
//     order after the fan-out completes.
// Under this contract output is bit-for-bit identical for any job count.
//
// The pool is exception-safe: a body that throws aborts the remaining
// un-started iterations, the first-by-index captured exception is
// rethrown on the calling thread, and neither the pool nor the caller
// deadlocks.  The destructor drains queued work before joining.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace wfr::exec {

/// max(1, std::thread::hardware_concurrency()).
int hardware_jobs();

/// Resolves the effective job count: `requested` when >= 1, else the
/// WFR_JOBS environment variable when set to a positive integer, else
/// hardware_jobs().  A malformed or non-positive WFR_JOBS value is
/// ignored with a one-time warning (mirroring WFR_LOG_LEVEL handling).
int resolve_jobs(int requested = 0);

/// Deterministic per-scenario seed: a SplitMix64 mix of the base seed and
/// the scenario index.  Index-derived (never worker-derived) seeding is
/// what keeps stochastic sweeps identical across job counts.
std::uint64_t scenario_seed(std::uint64_t base_seed, std::size_t index);

/// A fixed-size thread pool with a FIFO work queue.  Tasks are opaque
/// thunks; the fan-out primitives below layer indexing and determinism on
/// top.  Destruction drains the queue (all submitted tasks run) and joins
/// every worker.
class ThreadPool {
 public:
  /// Starts resolve_jobs(jobs) workers.
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int jobs() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task.  Throws InvalidArgument on an empty function.
  void submit(std::function<void()> task);

  /// Bounds the pending-task queue for try_submit (0 = unbounded, the
  /// default).  submit() is never bounded — the deterministic fan-out
  /// primitives must not shed work.
  void set_queue_limit(std::size_t limit);

  /// Load-shedding submit: enqueues and returns true unless the queue
  /// already holds queue-limit pending tasks, in which case the task is
  /// rejected (returns false, task dropped).  This is the bounded accept
  /// queue behind `wfr serve`'s 503 responses (docs/SERVER.md).
  bool try_submit(std::function<void()> task);

  /// Number of tasks waiting in the queue (excludes running tasks).
  std::size_t queue_depth() const;

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t queue_limit_ = 0;
  int busy_workers_ = 0;
  bool stopping_ = false;
};

namespace detail {

/// Shared state of one parallel_for: an atomic index dispenser plus
/// first-by-index exception capture.
struct ForLoopState {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> abort_floor{std::numeric_limits<std::size_t>::max()};
  std::mutex mutex;
  std::condition_variable done;
  std::size_t live_runners = 0;
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
};

void run_parallel_for(ThreadPool& pool, std::size_t count,
                      const std::function<void(std::size_t)>& body);

}  // namespace detail

/// Executes body(0..count-1) on the pool; blocks until every iteration
/// finished.  Iterations run in an unspecified order, so the body must
/// only write state owned by its index.  When a body throws, remaining
/// un-started iterations with a higher index are skipped and the
/// lowest-index captured exception is rethrown here.  With jobs() == 1
/// the loop runs inline on the calling thread.
inline void parallel_for(ThreadPool& pool, std::size_t count,
                         const std::function<void(std::size_t)>& body) {
  detail::run_parallel_for(pool, count, body);
}

/// parallel_for writing `fn(i)` into slot i of a pre-sized result vector.
/// R must be default-constructible.
template <typename R>
std::vector<R> parallel_map(ThreadPool& pool, std::size_t count,
                            const std::function<R(std::size_t)>& fn) {
  std::vector<R> results(count);
  detail::run_parallel_for(pool, count,
                           [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace wfr::exec

#include "exec/shard.hpp"

#include <algorithm>
#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wfr::exec {

const char* shard_mode_name(ShardMode mode) {
  switch (mode) {
    case ShardMode::kStride: return "stride";
    case ShardMode::kBlock: return "block";
  }
  return "stride";
}

ShardMode parse_shard_mode(const std::string& name) {
  if (name == "stride") return ShardMode::kStride;
  if (name == "block") return ShardMode::kBlock;
  throw util::InvalidArgument("unknown shard mode '" + name +
                              "' (expected stride or block)");
}

void ShardSpec::validate() const {
  util::require(count >= 1,
                util::format("shard count must be >= 1, got %d", count));
  util::require(index >= 0 && index < count,
                util::format("shard index %d out of range [0, %d)", index,
                             count));
}

namespace {

/// Rows per contiguous block: ceil(total / count); 0 for an empty grid.
std::size_t block_size(std::size_t total, int count) {
  const std::size_t n = static_cast<std::size_t>(count);
  return (total + n - 1) / n;
}

}  // namespace

std::size_t ShardSpec::rows(std::size_t total) const {
  const std::size_t n = static_cast<std::size_t>(count);
  const std::size_t i = static_cast<std::size_t>(index);
  if (mode == ShardMode::kStride) {
    // Rows g in [0, total) with g % count == index.
    return total > i ? (total - i - 1) / n + 1 : 0;
  }
  const std::size_t block = block_size(total, count);
  const std::size_t start = std::min(i * block, total);
  const std::size_t end = std::min(start + block, total);
  return end - start;
}

std::size_t ShardSpec::global_row(std::size_t local, std::size_t total) const {
  const std::size_t n = static_cast<std::size_t>(count);
  const std::size_t i = static_cast<std::size_t>(index);
  if (mode == ShardMode::kStride) return i + local * n;
  return std::min(i * block_size(total, count), total) + local;
}

int ShardSpec::shard_of(std::size_t global, std::size_t total) const {
  const std::size_t n = static_cast<std::size_t>(count);
  if (mode == ShardMode::kStride) return static_cast<int>(global % n);
  return static_cast<int>(global / block_size(total, count));
}

void merge_shard_outputs(const std::vector<std::string>& paths,
                         ShardMode mode, std::size_t total_rows,
                         std::ostream& out) {
  util::require(!paths.empty(), "shard merge needs at least one part file");
  ShardSpec spec;
  spec.count = static_cast<int>(paths.size());
  spec.mode = mode;

  std::vector<std::ifstream> parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    parts.emplace_back(path, std::ios::binary);
    util::require(static_cast<bool>(parts.back()),
                  "shard part '" + path + "': cannot open");
  }

  // Re-interleave: one line per global row, read from the owning shard's
  // part in global order.  The line buffer is reused across rows.
  std::string line;
  for (std::size_t global = 0; global < total_rows; ++global) {
    const int shard = spec.shard_of(global, total_rows);
    std::ifstream& in = parts[static_cast<std::size_t>(shard)];
    if (!std::getline(in, line))
      throw util::InvalidArgument(util::format(
          "shard part '%s': unexpected end of file at global row %zu",
          paths[static_cast<std::size_t>(shard)].c_str(), global));
    // getline that ran into EOF before the delimiter still succeeds; a
    // part whose last row lost its newline is a truncated write, not a
    // mergeable stream.
    if (in.eof())
      throw util::InvalidArgument(util::format(
          "shard part '%s': missing trailing newline at global row %zu",
          paths[static_cast<std::size_t>(shard)].c_str(), global));
    out << line << '\n';
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (parts[i].peek() != std::ifstream::traits_type::eof())
      throw util::InvalidArgument(
          "shard part '" + paths[i] +
          "': trailing data past this shard's last row");
  }
  util::require(static_cast<bool>(out),
                "shard merge: writing merged output failed");
}

}  // namespace wfr::exec

#pragma once
// A multi-producer single-consumer completion queue: the handoff half of
// the serve reactor's threading model (docs/PARALLELISM.md).  Pool
// workers finish CPU-heavy work on ThreadPool threads and post a
// completion thunk here; the owning event loop drains them on its own
// thread, so connection state is only ever touched single-threaded.
//
// The queue itself knows nothing about epoll: a wake hook installed by
// the consumer (e.g. an eventfd write) fires on every empty -> non-empty
// transition, which is exactly what lets a blocked epoll_wait learn that
// completions are pending.  Posting when the queue is already non-empty
// skips the hook — one wake per batch, not per completion.
//
// Thread-safety: post() from any thread; drain()/drain_into() only from
// the consumer thread.  The wake hook runs on the posting thread and
// must itself be thread-safe (an eventfd write is).

#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

namespace wfr::exec {

class CompletionQueue {
 public:
  CompletionQueue() = default;

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Installs the empty->non-empty wake hook (replacing any previous
  /// one).  Install before producers start posting; the hook is called
  /// without the queue lock held.
  void set_wake(std::function<void()> wake);

  /// Enqueues a completion from any thread.  Fires the wake hook when
  /// the queue was empty.
  void post(std::function<void()> completion);

  /// Moves every pending completion into `out` (appended) and returns
  /// how many were taken.  Consumer thread only.  Taking instead of
  /// running under the lock keeps completions free to post further
  /// completions without deadlocking.
  std::size_t drain_into(std::vector<std::function<void()>>& out);

  /// Drains and runs every pending completion; returns how many ran.
  /// Completions posted while running are NOT picked up (call again) —
  /// this bounds one drain to a finite batch so an event loop can
  /// interleave I/O fairly.
  std::size_t drain();

  /// Pending completions (may be stale the moment it returns; exposed on
  /// /metrics as the per-loop queue-depth gauge).
  std::size_t depth() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::function<void()>> pending_;
  std::function<void()> wake_;
};

}  // namespace wfr::exec

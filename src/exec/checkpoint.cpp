#include "exec/checkpoint.hpp"

#include "util/error.hpp"
#include "util/file.hpp"

namespace wfr::exec {

util::Json checkpoint_to_json(const SweepCheckpoint& checkpoint) {
  util::JsonObject doc;
  doc.set("wfr_sweep_checkpoint", util::Json(kSweepCheckpointVersion));
  doc.set("grid_hash", util::Json(util::to_hex(checkpoint.grid_hash)));
  util::JsonArray range;
  range.emplace_back(std::int64_t{0});
  range.emplace_back(static_cast<std::int64_t>(checkpoint.rows));
  util::JsonArray completed;
  completed.emplace_back(std::move(range));
  doc.set("completed", util::Json(std::move(completed)));
  doc.set("ndjson_bytes",
          util::Json(static_cast<std::int64_t>(checkpoint.ndjson_bytes)));
  return util::Json(std::move(doc));
}

SweepCheckpoint checkpoint_from_json(const util::Json& json) {
  if (!json.is_object())
    throw util::ParseError("sweep checkpoint: document is not an object");
  const util::JsonObject& doc = json.as_object();
  const util::Json* version = doc.find("wfr_sweep_checkpoint");
  if (version == nullptr)
    throw util::ParseError(
        "sweep checkpoint: missing 'wfr_sweep_checkpoint' version marker");
  if (!version->is_number() ||
      version->as_int() != kSweepCheckpointVersion)
    throw util::ParseError(
        "sweep checkpoint: unsupported version " + version->dump() +
        " (this build reads version " +
        std::to_string(kSweepCheckpointVersion) + ")");

  SweepCheckpoint checkpoint;
  checkpoint.grid_hash = util::hash_from_hex(doc.at("grid_hash").as_string());

  const util::JsonArray& completed = doc.at("completed").as_array();
  if (completed.size() != 1)
    throw util::ParseError(
        "sweep checkpoint: 'completed' must hold exactly one range, got " +
        std::to_string(completed.size()));
  const util::JsonArray& range = completed.front().as_array();
  if (range.size() != 2)
    throw util::ParseError("sweep checkpoint: range must be [start, end]");
  const std::int64_t start = range[0].as_int();
  const std::int64_t end = range[1].as_int();
  if (start != 0 || end < 0)
    throw util::ParseError(
        "sweep checkpoint: completed range must be a [0, rows] prefix, got " +
        completed.front().dump());
  checkpoint.rows = static_cast<std::uint64_t>(end);

  const std::int64_t bytes = doc.at("ndjson_bytes").as_int();
  if (bytes < 0)
    throw util::ParseError("sweep checkpoint: ndjson_bytes must be >= 0");
  checkpoint.ndjson_bytes = static_cast<std::uint64_t>(bytes);
  return checkpoint;
}

void save_checkpoint(const std::string& path,
                     const SweepCheckpoint& checkpoint) {
  util::write_file_atomic(path, checkpoint_to_json(checkpoint).dump() + "\n");
}

SweepCheckpoint load_checkpoint(const std::string& path) {
  return checkpoint_from_json(util::Json::parse(util::read_file(path)));
}

}  // namespace wfr::exec

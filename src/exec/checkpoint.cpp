#include "exec/checkpoint.hpp"

#include <filesystem>

#include "util/error.hpp"
#include "util/file.hpp"
#include "util/strings.hpp"

namespace wfr::exec {

util::Json checkpoint_to_json(const SweepCheckpoint& checkpoint) {
  util::JsonObject doc;
  doc.set("wfr_sweep_checkpoint", util::Json(kSweepCheckpointVersion));
  doc.set("grid_hash", util::Json(util::to_hex(checkpoint.grid_hash)));
  // Unsharded checkpoints omit the member so their bytes (and old
  // readers) are unchanged.
  if (checkpoint.shard.sharded()) {
    util::JsonObject shard;
    shard.set("count", util::Json(checkpoint.shard.count));
    shard.set("index", util::Json(checkpoint.shard.index));
    shard.set("mode", util::Json(shard_mode_name(checkpoint.shard.mode)));
    doc.set("shard", util::Json(std::move(shard)));
  }
  util::JsonArray range;
  range.emplace_back(std::int64_t{0});
  range.emplace_back(static_cast<std::int64_t>(checkpoint.rows));
  util::JsonArray completed;
  completed.emplace_back(std::move(range));
  doc.set("completed", util::Json(std::move(completed)));
  doc.set("ndjson_bytes",
          util::Json(static_cast<std::int64_t>(checkpoint.ndjson_bytes)));
  return util::Json(std::move(doc));
}

SweepCheckpoint checkpoint_from_json(const util::Json& json) {
  if (!json.is_object())
    throw util::ParseError("sweep checkpoint: document is not an object");
  const util::JsonObject& doc = json.as_object();
  const util::Json* version = doc.find("wfr_sweep_checkpoint");
  if (version == nullptr)
    throw util::ParseError(
        "sweep checkpoint: missing 'wfr_sweep_checkpoint' version marker");
  if (!version->is_number() ||
      version->as_int() != kSweepCheckpointVersion)
    throw util::ParseError(
        "sweep checkpoint: unsupported version " + version->dump() +
        " (this build reads version " +
        std::to_string(kSweepCheckpointVersion) + ")");

  SweepCheckpoint checkpoint;
  checkpoint.grid_hash = util::hash_from_hex(doc.at("grid_hash").as_string());

  if (const util::Json* shard = doc.find("shard")) {
    checkpoint.shard.count = static_cast<int>(shard->at("count").as_int());
    checkpoint.shard.index = static_cast<int>(shard->at("index").as_int());
    try {
      checkpoint.shard.mode =
          parse_shard_mode(shard->at("mode").as_string());
      checkpoint.shard.validate();
    } catch (const util::Error& e) {
      throw util::ParseError(std::string("sweep checkpoint: ") + e.what());
    }
  }

  const util::JsonArray& completed = doc.at("completed").as_array();
  if (completed.size() != 1)
    throw util::ParseError(
        "sweep checkpoint: 'completed' must hold exactly one range, got " +
        std::to_string(completed.size()));
  const util::JsonArray& range = completed.front().as_array();
  if (range.size() != 2)
    throw util::ParseError("sweep checkpoint: range must be [start, end]");
  const std::int64_t start = range[0].as_int();
  const std::int64_t end = range[1].as_int();
  if (start != 0 || end < 0)
    throw util::ParseError(
        "sweep checkpoint: completed range must be a [0, rows] prefix, got " +
        completed.front().dump());
  checkpoint.rows = static_cast<std::uint64_t>(end);

  const std::int64_t bytes = doc.at("ndjson_bytes").as_int();
  if (bytes < 0)
    throw util::ParseError("sweep checkpoint: ndjson_bytes must be >= 0");
  checkpoint.ndjson_bytes = static_cast<std::uint64_t>(bytes);
  return checkpoint;
}

void save_checkpoint(const std::string& path,
                     const SweepCheckpoint& checkpoint) {
  util::write_file_atomic(path, checkpoint_to_json(checkpoint).dump() + "\n");
}

SweepCheckpoint load_checkpoint(const std::string& path) {
  // read_file already names the path on IO failure; annotate everything
  // downstream (JSON syntax, shape, hex) with it too.
  const std::string text = util::read_file(path);
  try {
    return checkpoint_from_json(util::Json::parse(text));
  } catch (const util::Error& e) {
    throw util::ParseError("checkpoint '" + path + "': " + e.what());
  }
}

SweepCheckpoint validate_resume(const std::string& checkpoint_path,
                                const util::Hash128& grid_hash,
                                const ShardSpec& shard,
                                std::uint64_t shard_rows,
                                const std::string& ndjson_path) {
  const SweepCheckpoint ckpt = load_checkpoint(checkpoint_path);
  util::require(ckpt.grid_hash == grid_hash,
                "checkpoint '" + checkpoint_path +
                    "' does not match this sweep grid (checkpoint " +
                    util::to_hex(ckpt.grid_hash) + ", grid " +
                    util::to_hex(grid_hash) + ")");
  util::require(
      ckpt.shard.count == shard.count && ckpt.shard.index == shard.index &&
          ckpt.shard.mode == shard.mode,
      util::format("checkpoint '%s' was written by shard %d/%d (%s) but "
                   "this run is shard %d/%d (%s)",
                   checkpoint_path.c_str(), ckpt.shard.index,
                   ckpt.shard.count, shard_mode_name(ckpt.shard.mode),
                   shard.index, shard.count, shard_mode_name(shard.mode)));
  util::require(ckpt.rows <= shard_rows,
                "checkpoint '" + checkpoint_path + "' records " +
                    std::to_string(ckpt.rows) + " rows but the grid has " +
                    std::to_string(shard_rows) + " points");
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(ndjson_path, ec);
  if (ec)
    throw util::Error("cannot read '" + ndjson_path +
                      "' for resume: " + ec.message());
  util::require(size >= ckpt.ndjson_bytes,
                "'" + ndjson_path + "' is shorter than checkpoint '" +
                    checkpoint_path + "' records (" + std::to_string(size) +
                    " < " + std::to_string(ckpt.ndjson_bytes) + " bytes)");
  // Rows emitted after the last checkpoint are re-evaluated: truncate the
  // file to the checkpointed byte count and append from there.
  if (size > ckpt.ndjson_bytes) {
    std::filesystem::resize_file(ndjson_path, ckpt.ndjson_bytes, ec);
    if (ec)
      throw util::Error("cannot write '" + ndjson_path +
                        "': truncate for resume failed: " + ec.message());
  }
  return ckpt;
}

}  // namespace wfr::exec

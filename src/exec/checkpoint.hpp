#pragma once
// Sweep checkpoint/resume.  A checkpoint records how far a streaming
// sweep got — which rows of the grid have been fully emitted and how
// many NDJSON bytes they occupy — keyed on the grid's fingerprint so a
// stale checkpoint can never be replayed against a different grid.
//
// Format (versioned JSON, written atomically via util::write_file_atomic):
//   {"wfr_sweep_checkpoint": 1,
//    "grid_hash": "<32 lowercase hex chars>",
//    "completed": [[0, <rows>]],
//    "ndjson_bytes": <bytes>}
//
// Because stream_models emits rows in strictly increasing order, the
// completed set is always a single prefix range [0, rows) in version 1;
// the range-list encoding leaves room for future sharded producers.
// ndjson_bytes is the exact size of the output file after `rows` rows:
// on resume the partial file is truncated to this length (discarding any
// rows emitted after the last checkpoint) and appending continues at
// row `rows`, which re-assembles byte-identically to an uninterrupted
// run.  Writers must flush the output file *before* saving a checkpoint
// so the file is never shorter than ndjson_bytes, even after SIGKILL.

#include <cstdint>
#include <string>

#include "util/hash.hpp"
#include "util/json.hpp"

namespace wfr::exec {

inline constexpr int kSweepCheckpointVersion = 1;

struct SweepCheckpoint {
  /// SweepGrid::grid_hash() of the grid this checkpoint belongs to.
  util::Hash128 grid_hash;
  /// Rows [0, rows) have been fully emitted.
  std::uint64_t rows = 0;
  /// Exact NDJSON output size, in bytes, after `rows` rows.
  std::uint64_t ndjson_bytes = 0;
};

/// Serializes to the versioned JSON document above.
util::Json checkpoint_to_json(const SweepCheckpoint& checkpoint);

/// Parses and validates a checkpoint document.  Throws ParseError on an
/// unknown version, a malformed shape, or a completed set that is not a
/// single prefix range.
SweepCheckpoint checkpoint_from_json(const util::Json& json);

/// Writes `checkpoint` to `path` atomically (temp file + rename), so a
/// reader — including a resume after SIGKILL mid-save — never observes a
/// torn checkpoint.
void save_checkpoint(const std::string& path,
                     const SweepCheckpoint& checkpoint);

/// Reads and validates the checkpoint at `path`.
SweepCheckpoint load_checkpoint(const std::string& path);

}  // namespace wfr::exec

#pragma once
// Sweep checkpoint/resume.  A checkpoint records how far a streaming
// sweep got — which rows of the grid have been fully emitted and how
// many NDJSON bytes they occupy — keyed on the grid's fingerprint so a
// stale checkpoint can never be replayed against a different grid.
//
// Format (versioned JSON, written atomically via util::write_file_atomic):
//   {"wfr_sweep_checkpoint": 1,
//    "grid_hash": "<32 lowercase hex chars>",
//    "shard": {"count": N, "index": I, "mode": "stride"},   (sharded only)
//    "completed": [[0, <rows>]],
//    "ndjson_bytes": <bytes>}
//
// Because stream_models emits rows in strictly increasing order, the
// completed set is always a single prefix range [0, rows) in version 1;
// the range-list encoding leaves room for future non-prefix producers.
// Sharded sweeps checkpoint per shard: rows are *shard-local* (the
// shard's emission order is itself a strictly increasing prefix — see
// exec/shard.hpp) and the "shard" member pins the spec, so a checkpoint
// can never resume under a different shard split.  Unsharded checkpoints
// omit the member and stay byte-compatible with pre-shard readers.
// ndjson_bytes is the exact size of the output file after `rows` rows:
// on resume the partial file is truncated to this length (discarding any
// rows emitted after the last checkpoint) and appending continues at
// row `rows`, which re-assembles byte-identically to an uninterrupted
// run.  Writers must flush the output file *before* saving a checkpoint
// so the file is never shorter than ndjson_bytes, even after SIGKILL.

#include <cstdint>
#include <string>

#include "exec/shard.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"

namespace wfr::exec {

inline constexpr int kSweepCheckpointVersion = 1;

struct SweepCheckpoint {
  /// SweepGrid::grid_hash() of the grid this checkpoint belongs to.
  util::Hash128 grid_hash;
  /// Shard-local rows [0, rows) have been fully emitted.
  std::uint64_t rows = 0;
  /// Exact NDJSON output size, in bytes, after `rows` rows.
  std::uint64_t ndjson_bytes = 0;
  /// The shard this checkpoint tracks (default: the whole grid).
  ShardSpec shard;
};

/// Serializes to the versioned JSON document above.
util::Json checkpoint_to_json(const SweepCheckpoint& checkpoint);

/// Parses and validates a checkpoint document.  Throws ParseError on an
/// unknown version, a malformed shape, an invalid shard member, or a
/// completed set that is not a single prefix range.
SweepCheckpoint checkpoint_from_json(const util::Json& json);

/// Writes `checkpoint` to `path` atomically (temp file + rename), so a
/// reader — including a resume after SIGKILL mid-save — never observes a
/// torn checkpoint.
void save_checkpoint(const std::string& path,
                     const SweepCheckpoint& checkpoint);

/// Reads and validates the checkpoint at `path`.  Every parse/shape
/// failure is rethrown with the offending path prefixed, so a corrupt
/// checkpoint dies loudly naming its file instead of silently restarting
/// the sweep from zero.
SweepCheckpoint load_checkpoint(const std::string& path);

/// Loads the checkpoint at `checkpoint_path` and cross-checks it against
/// the sweep it is about to resume: the grid fingerprint, the shard spec
/// (count/index/mode must all match), the row count (`shard_rows` = rows
/// this shard owns), and the NDJSON output at `ndjson_path`, which must
/// exist and hold at least ndjson_bytes bytes.  Bytes past the
/// checkpoint (rows emitted after the last save) are truncated away so
/// appending from row `rows` re-assembles byte-identically.  Throws with
/// the offending path in every message.
SweepCheckpoint validate_resume(const std::string& checkpoint_path,
                                const util::Hash128& grid_hash,
                                const ShardSpec& shard,
                                std::uint64_t shard_rows,
                                const std::string& ndjson_path);

}  // namespace wfr::exec

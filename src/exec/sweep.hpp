#pragma once
// SweepRunner: fan a list (or parameter grid) of what-if scenarios across
// the thread pool, memoizing repeated points so identical (system,
// workflow, seed) configurations are evaluated exactly once per runner.
//
// This is the engine behind `wfr sweep`, `POST /v1/sweep`, the
// capacity-planning and LCLS what-if examples, and the sweep benchmarks.
// The determinism contract of exec::parallel_for applies: results land in
// slots by scenario index and every output is bit-for-bit identical at
// --jobs 1 and --jobs N (docs/PARALLELISM.md).
//
// Campaign-scale sweeps (the ROADMAP's million-point grids) use the
// streaming layer instead of the buffering run() API:
//   * SweepGrid describes a parameter grid without materializing it —
//     scenarios are built on demand by flat index, so a 10^6-point grid
//     costs O(1) resident memory, and grid_hash() fingerprints the grid
//     for checkpoint/resume (exec/checkpoint.hpp).
//   * stream_models() emits results in deterministic scenario order *as
//     slots complete*: a bounded reorder window holds out-of-order
//     completions, claims are throttled against the emit frontier, and
//     there is no end-of-grid barrier.  Peak resident state is
//     O(reorder_window + cache capacity + jobs), independent of grid
//     size.
//
// The memo cache is keyed on a fixed-width 128-bit hash of the canonical
// scenario parameters — the system spec, workflow characterization, and
// scenario seed, never the label or grid coordinates — and is size-capped
// with LRU eviction so cache growth cannot swallow a campaign's RSS.
// In-flight entries are pinned (never evicted mid-evaluation); capacity 0
// disables retention entirely while still deduplicating concurrent
// identical keys through the shared-future path.  Hit/miss/eviction
// totals are exported through obs::MetricsRegistry with delta semantics,
// so repeated exports (e.g. one per /metrics scrape) never double-count.

#include <any>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <typeinfo>
#include <unordered_map>
#include <utility>
#include <vector>

#include <atomic>

#include "core/model.hpp"
#include "exec/shard.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "util/hash.hpp"

namespace wfr::exec {

/// One sweep point: a complete model input plus bookkeeping.
struct Scenario {
  /// Display label; NOT part of the cache key.
  std::string label;
  core::SystemSpec system;
  core::WorkflowCharacterization workflow;
  /// Seed for stochastic evaluators (simulation jitter, noise).  Part of
  /// the cache key: two points with equal parameters and equal seeds are
  /// one evaluation.  Derive per-point seeds with scenario_seed(base, i)
  /// when points must draw independent streams (this forgoes dedup).
  std::uint64_t seed = 0;
  /// The grid coordinates that produced this point (name, value), in axis
  /// order.  Filled by SweepGrid/expand_grid; carried into NDJSON output.
  std::vector<std::pair<std::string, double>> params;
};

/// Canonical cache key of a scenario as human-readable bytes (system +
/// workflow + seed, no label).  Kept for diagnostics and tests; the memo
/// cache itself keys on scenario_hash, the fixed-width digest of the same
/// canonical parameter set.
std::string scenario_key(const Scenario& scenario);

/// Fixed-width digest of the canonical scenario parameters: every field
/// of the system spec and workflow characterization plus the seed, field
/// order fixed, strings length-prefixed.  Labels and grid coordinates are
/// presentation-only and excluded.  Equal parameters always digest
/// equally; this is the memo-cache key and must be extended whenever
/// SystemSpec or WorkflowCharacterization grows a field.
util::Hash128 scenario_hash(const Scenario& scenario);

/// The model-based evaluation of one scenario (SweepRunner::run_models).
struct ScenarioResult {
  std::string label;
  Scenario scenario;
  /// The assembled model (shared across cache hits).
  std::shared_ptr<const core::RooflineModel> model;
  int parallelism_wall = 0;
  /// min over ceilings at the wall — the best attainable throughput.
  double attainable_tps_at_wall = 0.0;
  /// Label and channel of the ceiling binding at the wall.
  std::string binding_label;
  std::string binding_channel;
  /// Per-slot latency: binding_ceiling(1).seconds_per_task (0 when a
  /// horizontal ceiling binds even at one task).
  double slot_seconds = 0.0;
  /// total_tasks / attainable_tps_at_wall.
  double campaign_makespan_seconds = 0.0;
};

/// One NDJSON line for a result:
///   {"sweep":<label>,"params":{...},"wall":N,"attainable_tps":...,
///    "binding":...,"slot_seconds":...,"campaign_makespan_s":...}
/// Deterministic bytes: field order fixed, params in axis order.
std::string scenario_result_line(const ScenarioResult& result);

/// Appends the NDJSON object of one sweep result to `out` (no trailing
/// newline, `out` not cleared).  scenario_result_line is built on this
/// writer, so the two produce identical bytes; the streaming hot path
/// calls it directly with a reused row buffer instead of materializing
/// Json values per point.
void append_result_line(
    std::string& out, std::string_view label,
    const std::vector<std::pair<std::string, double>>& params, int wall,
    double attainable_tps, std::string_view binding, std::string_view channel,
    double slot_seconds, double campaign_makespan_s);

/// The wall/attainable/binding summary of one scenario without the
/// assembled RooflineModel — the campaign hot path's result type.  All
/// fields are derived from the canonical scenario parameters (never the
/// label or grid coordinates), so a memoized summary is reusable
/// verbatim across cache hits.
struct ModelSummary {
  int parallelism_wall = 0;
  double attainable_tps_at_wall = 0.0;
  double slot_seconds = 0.0;
  double campaign_makespan_seconds = 0.0;
  /// Display label of the ceiling binding at the wall — the only label
  /// the hot path formats (core::ceiling_label of the binding spec).
  std::string binding_label;
  /// core::channel_name() of the binding ceiling (static storage).
  const char* binding_channel = "";
};

/// Evaluates one scenario to its summary, using `scratch` for the
/// ceiling set so a worker looping over a grid reuses one allocation.
/// Performs the same validation — and throws the same errors — as
/// core::build_model; the summary fields are byte-for-byte the ones
/// evaluate_model_scenario derives from the full model.
ModelSummary evaluate_model_summary(const Scenario& scenario,
                                    std::vector<core::CeilingSpec>& scratch);

/// One axis of a parameter grid (see SweepGrid for the known names).
struct ParamAxis {
  std::string name;
  std::vector<double> values;
};

/// A parameter grid described lazily: the cross product of the axes in
/// row-major order (first axis slowest), materialized one scenario at a
/// time by flat index.  Known axis names:
///   nodes_per_task — intra-task-parallelism factor applied via
///                    core::scale_intra_task_parallelism;
///   efficiency     — strong-scaling efficiency used by nodes_per_task
///                    (default 1.0; an axis of its own);
///   parallel_tasks, total_tasks, total_nodes — absolute integers;
///   fs_gbs, external_gbs, nic_gbs, peak_flops — absolute rates.
/// The constructor throws InvalidArgument on an unknown name or an empty
/// axis.  at(flat) is a pure function of (grid definition, flat), so
/// streaming workers can materialize rows independently in any order.
class SweepGrid {
 public:
  SweepGrid(core::SystemSpec base_system,
            core::WorkflowCharacterization base_workflow,
            std::vector<ParamAxis> axes);

  /// Number of points (product of the axis lengths; 1 for no axes).
  std::size_t size() const { return points_; }

  /// Materializes the scenario at `flat` (row-major).  Throws
  /// InvalidArgument when out of range or when an integer axis lands on a
  /// non-integral value.
  Scenario at(std::size_t flat) const;

  /// at(flat) into a caller-owned scenario, reusing its string/vector
  /// capacity — the streaming hot path's variant (zero steady-state
  /// allocations for grids without intra-task-scaling axes).
  void at_into(std::size_t flat, Scenario& out) const;

  /// Fingerprint of the grid definition (base system + base workflow +
  /// axes), the identity a checkpoint is keyed on: resuming under a
  /// different grid is an error, not silent corruption.
  util::Hash128 grid_hash() const;

  const core::SystemSpec& base_system() const { return base_system_; }
  const core::WorkflowCharacterization& base_workflow() const {
    return base_workflow_;
  }
  const std::vector<ParamAxis>& axes() const { return axes_; }

 private:
  core::SystemSpec base_system_;
  core::WorkflowCharacterization base_workflow_;
  std::vector<ParamAxis> axes_;
  std::size_t points_ = 1;
};

/// Materializes a whole grid into a vector (the small-grid path: tables,
/// SVG overlays, run_models).  Campaign-scale grids should stay lazy via
/// SweepGrid + stream_models.
std::vector<Scenario> expand_grid(const core::SystemSpec& base_system,
                                  const core::WorkflowCharacterization& base,
                                  const std::vector<ParamAxis>& axes);

/// Default completed-entry capacity of the memo cache.
inline constexpr std::size_t kDefaultSweepCacheCapacity = 1 << 16;

struct SweepOptions {
  /// Worker threads; 0 = resolve_jobs() (WFR_JOBS, then hardware).
  int jobs = 0;
  /// Maximum completed entries retained by the memo cache (LRU beyond
  /// this).  0 disables retention: nothing is memoized across points, but
  /// concurrently in-flight identical keys still share one evaluation.
  std::size_t cache_capacity = kDefaultSweepCacheCapacity;
};

/// Cache statistics of one runner.  Counters are lifetime totals;
/// cache_entries is the current completed-entry count (a gauge).
struct SweepStats {
  std::uint64_t scenarios = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;
};

/// Streaming evaluation options (SweepRunner::stream_models).
struct StreamOptions {
  /// Maximum completed-but-unemitted rows held while an earlier row is
  /// still evaluating.  Claims are throttled to
  /// [emit frontier, emit frontier + window), bounding buffered results;
  /// larger windows tolerate more completion skew, smaller ones bound
  /// memory tighter.  Must be >= 1.
  std::size_t reorder_window = 1024;
  /// First row to evaluate and emit; rows below are assumed already
  /// emitted by a previous run (checkpoint resume).  Shard-local when
  /// `shard` splits the grid (identical to the flat grid row otherwise).
  std::size_t start_row = 0;
  /// The slice of the grid this stream owns (default: all of it).  Row
  /// indices seen by sinks are shard-local: the stream walks this
  /// shard's rows 0..shard.rows(grid.size()), mapping each to its global
  /// flat index via shard.global_row, so per-shard checkpoints stay
  /// simple prefix ranges.
  ShardSpec shard;
};

/// Evaluates scenarios on a pool with memoization.  A runner's cache
/// persists across run() calls; evaluators must be pure functions of the
/// scenario (plus its seed), or the cache would lie.  Do not call run()
/// from inside an evaluator.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  int jobs() const { return pool_.jobs(); }
  std::size_t cache_capacity() const { return cache_capacity_; }

  /// Fans `scenarios` across the pool through `eval`; returns results in
  /// scenario order.  R must be default-constructible and copyable.  An
  /// evaluator exception propagates (lowest failing index first) and is
  /// also replayed to every cache hit of the same key.
  template <typename R>
  std::vector<R> run(const std::vector<Scenario>& scenarios,
                     const std::function<R(const Scenario&)>& eval) {
    std::vector<R> results(scenarios.size());
    parallel_for(pool_, scenarios.size(), [&](std::size_t i) {
      R value = evaluate_cached<R>(scenarios[i], eval);
      results[i] = std::move(value);
    });
    return results;
  }

  /// The standard sweep: build the roofline model of each scenario and
  /// derive the wall / attainable-throughput / binding-ceiling summary.
  std::vector<ScenarioResult> run_models(
      const std::vector<Scenario>& scenarios);

  /// Sink of one streamed row.  Invoked by exactly one worker at a time
  /// (the runner serializes emission), with `row` strictly increasing
  /// from options.start_row; the result is owned by the runner and valid
  /// only for the duration of the call.  A sink exception stops the
  /// stream after the current row and propagates to the caller.
  using RowSink = std::function<void(std::size_t row, const ScenarioResult&)>;

  /// Streams rows [options.start_row, grid.size()) of the grid through
  /// the model evaluator in deterministic row order, with no end-of-grid
  /// barrier: each row is handed to `sink` as soon as it and every row
  /// before it have completed.  Emitted bytes (via scenario_result_line)
  /// are identical to the buffering run_models path and invariant under
  /// jobs, reorder_window, and resume splits.  An evaluator exception
  /// stops claims and rethrows lowest-index-first; rows already handed to
  /// the sink stay emitted (a checkpoint written from the sink remains
  /// valid).
  void stream_models(const SweepGrid& grid, const StreamOptions& options,
                     const RowSink& sink);

  /// Sink of one streamed NDJSON line, '\n'-terminated — the exact bytes
  /// scenario_result_line(row) + "\n" would produce.  Same protocol as
  /// RowSink: single emitter, strictly increasing shard-local rows, the
  /// buffer is owned by the runner and valid only during the call.
  using LineSink = std::function<void(std::size_t row, std::string_view line)>;

  /// stream_models without the models: each row is evaluated straight to
  /// its ModelSummary in per-worker scratch (core::compute_ceilings into
  /// a reused arena, one label formatted per point) and serialized into a
  /// reused row buffer.  Byte-identical to streaming
  /// scenario_result_line over stream_models at any jobs/window/
  /// shard/resume split — this is the campaign-scale `--stream` path.
  void stream_lines(const SweepGrid& grid, const StreamOptions& options,
                    const LineSink& sink);

  /// Snapshot of the cache statistics (thread-safe).
  SweepStats stats() const;

  /// Exports this runner's statistics into `registry` as the counters
  /// sweep.scenarios, sweep.cache_hits, sweep.cache_misses,
  /// sweep.cache_evictions and the gauge sweep.cache_entries.  Counter
  /// export is delta-based: each call adds only what accrued since the
  /// previous export, so exporting twice into the same registry (one
  /// /metrics scrape per request, say) never double-counts.
  void export_metrics(obs::MetricsRegistry& registry);

  /// Attaches a tracer (not owned; null detaches): every evaluate becomes
  /// an "evaluate" span annotated cache=hit|miss plus the scenario label.
  /// Spans never feed results, so sweep determinism is unaffected.
  void set_tracer(obs::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }

 private:
  /// Memo-cache key: scenario digest plus the evaluator's result type
  /// (one runner may cache heterogeneous result types).
  struct CacheKey {
    util::Hash128 scenario;
    std::size_t type = 0;
    friend bool operator==(const CacheKey& a, const CacheKey& b) {
      return a.scenario == b.scenario && a.type == b.type;
    }
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& key) const {
      return static_cast<std::size_t>(key.scenario.lo ^
                                      (key.scenario.hi * 0x9e3779b97f4a7c15ULL) ^
                                      key.type);
    }
  };
  struct CacheEntry {
    std::any future;  // std::shared_future<R>
    /// Completed entries are LRU-evictable; in-flight ones are pinned.
    bool completed = false;
    std::list<CacheKey>::iterator lru;
  };

  template <typename R>
  R evaluate_cached(const Scenario& scenario,
                    const std::function<R(const Scenario&)>& eval) {
    obs::SpanScope span(tracer_.load(std::memory_order_acquire), "evaluate",
                        "sweep");
    const CacheKey key{scenario_hash(scenario), typeid(R).hash_code()};
    std::shared_future<R> future;
    std::promise<R> promise;
    bool owner = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++stats_.scenarios;
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++stats_.cache_hits;
        if (it->second.completed)
          lru_.splice(lru_.begin(), lru_, it->second.lru);
        future = std::any_cast<std::shared_future<R>>(it->second.future);
      } else {
        ++stats_.cache_misses;
        future = promise.get_future().share();
        CacheEntry entry;
        entry.future = future;
        cache_.emplace(key, std::move(entry));
        owner = true;
      }
    }
    if (span.active()) {
      span.arg("cache", owner ? "miss" : "hit");
      if (!scenario.label.empty()) span.arg("scenario", scenario.label);
    }
    if (owner) {
      try {
        promise.set_value(eval(scenario));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
      complete_entry(key);
    }
    return future.get();
  }

  /// Marks `key` completed: with capacity 0 the entry is dropped (its
  /// shared_future keeps serving waiters that already joined); otherwise
  /// it becomes the most-recent LRU entry and the tail is evicted down to
  /// capacity.
  void complete_entry(const CacheKey& key);

  ThreadPool pool_;
  std::size_t cache_capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::list<CacheKey> lru_;  // front = most recently used, completed only
  SweepStats stats_;
  /// Counter values as of the previous export_metrics call.
  SweepStats exported_;
  std::atomic<obs::Tracer*> tracer_{nullptr};
};

/// Evaluates one scenario through core::build_model (the run_models
/// evaluator, exposed for tests and serial baselines).
ScenarioResult evaluate_model_scenario(const Scenario& scenario);

}  // namespace wfr::exec

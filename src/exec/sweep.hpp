#pragma once
// SweepRunner: fan a list (or parameter grid) of what-if scenarios across
// the thread pool, memoizing repeated points so identical (system,
// workflow, seed) configurations are evaluated exactly once per runner.
//
// This is the engine behind `wfr sweep`, the capacity-planning and LCLS
// what-if examples, and the sweep-scaling benchmark.  The determinism
// contract of exec::parallel_for applies: results land in slots by
// scenario index and every output is bit-for-bit identical at --jobs 1
// and --jobs N (docs/PARALLELISM.md).
//
// The memo cache is keyed on the canonicalized scenario parameters — the
// JSON serialization of the system spec and workflow characterization
// plus the scenario seed (never the label) — so repeated sweep points hit
// the cache even when labeled differently.  Cache hit/miss totals are
// exported through obs::MetricsRegistry.

#include <any>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <typeinfo>
#include <utility>
#include <vector>

#include "core/model.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"

namespace wfr::exec {

/// One sweep point: a complete model input plus bookkeeping.
struct Scenario {
  /// Display label; NOT part of the cache key.
  std::string label;
  core::SystemSpec system;
  core::WorkflowCharacterization workflow;
  /// Seed for stochastic evaluators (simulation jitter, noise).  Part of
  /// the cache key: two points with equal parameters and equal seeds are
  /// one evaluation.  Derive per-point seeds with scenario_seed(base, i)
  /// when points must draw independent streams (this forgoes dedup).
  std::uint64_t seed = 0;
  /// The grid coordinates that produced this point (name, value), in axis
  /// order.  Filled by expand_grid; carried into NDJSON output.
  std::vector<std::pair<std::string, double>> params;
};

/// Canonical cache key of a scenario (system + workflow + seed, no label).
std::string scenario_key(const Scenario& scenario);

/// The model-based evaluation of one scenario (SweepRunner::run_models).
struct ScenarioResult {
  std::string label;
  Scenario scenario;
  /// The assembled model (shared across cache hits).
  std::shared_ptr<const core::RooflineModel> model;
  int parallelism_wall = 0;
  /// min over ceilings at the wall — the best attainable throughput.
  double attainable_tps_at_wall = 0.0;
  /// Label and channel of the ceiling binding at the wall.
  std::string binding_label;
  std::string binding_channel;
  /// Per-slot latency: binding_ceiling(1).seconds_per_task (0 when a
  /// horizontal ceiling binds even at one task).
  double slot_seconds = 0.0;
  /// total_tasks / attainable_tps_at_wall.
  double campaign_makespan_seconds = 0.0;
};

/// One NDJSON line for a result:
///   {"sweep":<label>,"params":{...},"wall":N,"attainable_tps":...,
///    "binding":...,"slot_seconds":...,"campaign_makespan_s":...}
/// Deterministic bytes: field order fixed, params in axis order.
std::string scenario_result_line(const ScenarioResult& result);

/// One axis of a parameter grid (see expand_grid for the known names).
struct ParamAxis {
  std::string name;
  std::vector<double> values;
};

/// Expands a parameter grid into scenarios: the cross product of the axes
/// in row-major order (first axis slowest).  Known axis names:
///   nodes_per_task — intra-task-parallelism factor applied via
///                    core::scale_intra_task_parallelism;
///   efficiency     — strong-scaling efficiency used by nodes_per_task
///                    (default 1.0; an axis of its own);
///   parallel_tasks, total_tasks, total_nodes — absolute integers;
///   fs_gbs, external_gbs, nic_gbs, peak_flops — absolute rates.
/// Throws InvalidArgument on an unknown name or an empty axis.
std::vector<Scenario> expand_grid(const core::SystemSpec& base_system,
                                  const core::WorkflowCharacterization& base,
                                  const std::vector<ParamAxis>& axes);

struct SweepOptions {
  /// Worker threads; 0 = resolve_jobs() (WFR_JOBS, then hardware).
  int jobs = 0;
};

/// Cache statistics of one runner.
struct SweepStats {
  std::uint64_t scenarios = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Evaluates scenarios on a pool with memoization.  A runner's cache
/// persists across run() calls; evaluators must be pure functions of the
/// scenario (plus its seed), or the cache would lie.  Do not call run()
/// from inside an evaluator.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  int jobs() const { return pool_.jobs(); }

  /// Fans `scenarios` across the pool through `eval`; returns results in
  /// scenario order.  R must be default-constructible and copyable.  An
  /// evaluator exception propagates (lowest failing index first) and is
  /// also replayed to every cache hit of the same key.
  template <typename R>
  std::vector<R> run(const std::vector<Scenario>& scenarios,
                     const std::function<R(const Scenario&)>& eval) {
    std::vector<R> results(scenarios.size());
    parallel_for(pool_, scenarios.size(), [&](std::size_t i) {
      R value = evaluate_cached<R>(scenarios[i], eval);
      results[i] = std::move(value);
    });
    return results;
  }

  /// The standard sweep: build the roofline model of each scenario and
  /// derive the wall / attainable-throughput / binding-ceiling summary.
  std::vector<ScenarioResult> run_models(
      const std::vector<Scenario>& scenarios);

  const SweepStats& stats() const { return stats_; }

  /// Adds this runner's lifetime totals to `registry` as the counters
  /// sweep.scenarios, sweep.cache_hits, sweep.cache_misses.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  template <typename R>
  R evaluate_cached(const Scenario& scenario,
                    const std::function<R(const Scenario&)>& eval) {
    const std::string key =
        scenario_key(scenario) + "\x1f" + typeid(R).name();
    std::shared_future<R> future;
    std::promise<R> promise;
    bool owner = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++stats_.scenarios;
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++stats_.cache_hits;
        future = std::any_cast<std::shared_future<R>>(it->second);
      } else {
        ++stats_.cache_misses;
        future = promise.get_future().share();
        cache_.emplace(key, future);
        owner = true;
      }
    }
    if (owner) {
      try {
        promise.set_value(eval(scenario));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }
    return future.get();
  }

  ThreadPool pool_;
  std::mutex mutex_;
  std::map<std::string, std::any> cache_;
  SweepStats stats_;
};

/// Evaluates one scenario through core::build_model (the run_models
/// evaluator, exposed for tests and serial baselines).
ScenarioResult evaluate_model_scenario(const Scenario& scenario);

}  // namespace wfr::exec

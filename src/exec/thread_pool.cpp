#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace wfr::exec {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

/// Parses WFR_JOBS once; invalid values warn and fall back to 0 (unset).
int env_jobs() {
  static const int value = [] {
    const char* text = std::getenv("WFR_JOBS");
    if (text == nullptr || *text == '\0') return 0;
    char* end = nullptr;
    const long parsed = std::strtol(text, &end, 10);
    if (end == nullptr || *end != '\0' || parsed < 1 || parsed > 1 << 16) {
      util::log_warn("ignoring invalid WFR_JOBS '" + std::string(text) +
                     "' (want a positive integer)");
      return 0;
    }
    return static_cast<int>(parsed);
  }();
  return value;
}

}  // namespace

int resolve_jobs(int requested) {
  if (requested >= 1) return requested;
  const int env = env_jobs();
  if (env >= 1) return env;
  return hardware_jobs();
}

std::uint64_t scenario_seed(std::uint64_t base_seed, std::size_t index) {
  // SplitMix64 finalizer over the combined words: adjacent indices map to
  // statistically independent streams for any base seed.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL *
                                    (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

ThreadPool::ThreadPool(int jobs) {
  const int n = resolve_jobs(jobs);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  util::require(static_cast<bool>(task), "ThreadPool::submit needs a task");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    util::require(!stopping_, "ThreadPool is shutting down");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::set_queue_limit(std::size_t limit) {
  std::unique_lock<std::mutex> lock(mutex_);
  queue_limit_ = limit;
}

bool ThreadPool::try_submit(std::function<void()> task) {
  util::require(static_cast<bool>(task), "ThreadPool::try_submit needs a task");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    util::require(!stopping_, "ThreadPool is shutting down");
    if (queue_limit_ != 0 && queue_.size() >= queue_limit_) return false;
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return true;
}

std::size_t ThreadPool::queue_depth() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && busy_workers_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      // Drain-on-destruction: keep executing while work remains, even
      // when stopping.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_workers_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --busy_workers_;
      if (queue_.empty() && busy_workers_ == 0) idle_.notify_all();
    }
  }
}

namespace detail {

namespace {

/// One worker's share of a parallel_for: claim indices until the range is
/// exhausted or an earlier index aborted the loop.
void for_loop_runner(ForLoopState& state, std::size_t count,
                     const std::function<void(std::size_t)>& body) {
  for (;;) {
    const std::size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= count || i >= state.abort_floor.load(std::memory_order_acquire))
      break;
    try {
      body(i);
    } catch (...) {
      // Remember the lowest-index failure; skip iterations above it.
      std::size_t floor = state.abort_floor.load(std::memory_order_acquire);
      while (i < floor && !state.abort_floor.compare_exchange_weak(
                              floor, i, std::memory_order_acq_rel)) {
      }
      std::unique_lock<std::mutex> lock(state.mutex);
      if (i < state.error_index) {
        state.error_index = i;
        state.error = std::current_exception();
      }
    }
  }
  std::unique_lock<std::mutex> lock(state.mutex);
  if (--state.live_runners == 0) state.done.notify_all();
}

}  // namespace

void run_parallel_for(ThreadPool& pool, std::size_t count,
                      const std::function<void(std::size_t)>& body) {
  util::require(static_cast<bool>(body), "parallel_for needs a body");
  if (count == 0) return;

  // Single-job pools run inline: no cross-thread handoff, and exceptions
  // propagate naturally at the first failing index.
  if (pool.jobs() == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  ForLoopState state;
  const std::size_t runners =
      std::min<std::size_t>(static_cast<std::size_t>(pool.jobs()), count);
  state.live_runners = runners;
  for (std::size_t r = 0; r < runners; ++r)
    pool.submit([&state, count, &body] { for_loop_runner(state, count, body); });

  std::unique_lock<std::mutex> lock(state.mutex);
  state.done.wait(lock, [&state] { return state.live_runners == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace detail

}  // namespace wfr::exec

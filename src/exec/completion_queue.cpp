#include "exec/completion_queue.hpp"

#include <utility>

#include "util/error.hpp"

namespace wfr::exec {

void CompletionQueue::set_wake(std::function<void()> wake) {
  std::unique_lock<std::mutex> lock(mutex_);
  wake_ = std::move(wake);
}

void CompletionQueue::post(std::function<void()> completion) {
  util::require(static_cast<bool>(completion),
                "CompletionQueue::post needs a completion");
  bool was_empty = false;
  std::function<void()> wake;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    was_empty = pending_.empty();
    pending_.push_back(std::move(completion));
    if (was_empty) wake = wake_;  // copy: the hook may be replaced later
  }
  if (wake) wake();
}

std::size_t CompletionQueue::drain_into(
    std::vector<std::function<void()>>& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t taken = pending_.size();
  if (taken == 0) return 0;
  if (out.empty()) {
    out.swap(pending_);
  } else {
    out.insert(out.end(), std::make_move_iterator(pending_.begin()),
               std::make_move_iterator(pending_.end()));
    pending_.clear();
  }
  return taken;
}

std::size_t CompletionQueue::drain() {
  std::vector<std::function<void()>> batch;
  drain_into(batch);
  for (std::function<void()>& completion : batch) completion();
  return batch.size();
}

std::size_t CompletionQueue::depth() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return pending_.size();
}

}  // namespace wfr::exec

// Auto-tuner control flows: run the mini-GPTune campaign (a real Gaussian
// process + expected-improvement loop over a synthetic SuperLU_DIST cost
// surface) under the RCI and Spawn orchestration styles, and watch the
// control flow — not the application — dominate the end-to-end time.

#include <iostream>

#include "plot/bar_plot.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workflows/gptune_wf.hpp"

using namespace wfr;

int main() {
  const workflows::GptuneStudyResult study = workflows::run_gptune(/*seed=*/7);

  std::cout << "mini-GPTune: 40 samples of SuperLU_DIST (4960 x 4960)\n\n";

  util::TextTable table(
      {"mode", "total", "application", "I/O time", "metadata", "samples/s"});
  for (const autotune::CampaignResult* r :
       {&study.rci, &study.spawn, &study.projected}) {
    table.add_row({autotune::control_flow_name(r->mode),
                   util::format_seconds(r->total_seconds),
                   util::format_seconds(r->application_seconds),
                   util::format_seconds(r->io_seconds),
                   util::format_bytes(r->fs_bytes),
                   util::format("%.3f", r->samples_per_second())});
  }
  std::cout << table.str() << "\n";

  std::cout << util::format(
      "Spawn over RCI:        %.1fx (paper: 2.4x)\n"
      "Projected over Spawn:  %.1fx (paper: 12x)\n\n",
      study.spawn_over_rci, study.projected_over_spawn);

  // The tuned result itself: both modes run the same optimization.
  const autotune::Sample& best = study.rci.history.best();
  std::cout << util::format(
      "best configuration found: (%.2f, %.2f, %.2f) -> %.3f s/run\n\n",
      best.params[0], best.params[1], best.params[2], best.value);

  std::cout << "Time breakdown components (Fig. 10b):\n";
  for (const trace::TimeBreakdown& b : study.breakdowns) {
    std::cout << "  " << b.scenario << ":\n";
    for (const trace::BreakdownComponent& c : b.components)
      std::cout << util::format("    %-18s %s\n", c.label.c_str(),
                                util::format_seconds(c.seconds).c_str());
  }

  plot::write_breakdown_svg(study.breakdowns, "autotuner_breakdown.svg");
  std::cout << "\nwrote autotuner_breakdown.svg\n";
  return 0;
}

// Trace archival round-trip: execute a workflow once, archive its trace
// as JSON, then later rebuild the characterization and the Workflow
// Roofline from the archive alone — no re-execution, no profiling tools,
// the paper's "analyze workflows without traces deployed" usability point
// made concrete.

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/characterization.hpp"
#include "core/model.hpp"
#include "dag/wdl.hpp"
#include "sim/runner.hpp"
#include "trace/summary.hpp"
#include "util/units.hpp"

using namespace wfr;

namespace {

constexpr const char* kWorkflowJson = R"({
  "name": "archive-demo",
  "tasks": [
    {"name": "ingest", "nodes": 8,
     "demand": {"external_in": "2 TB", "fs_write": "2 TB"}},
    {"name": "simulate", "nodes": 64, "depends_on": ["ingest"],
     "demand": {"fs_read": "2 TB", "flops_per_node": "500 TFLOP",
                "dram_per_node": "1 TB", "network": "10 TB"}},
    {"name": "render", "nodes": 4, "depends_on": ["simulate"],
     "demand": {"fs_read": "200 GB", "flops_per_node": "20 TFLOP",
                "fs_write": "50 GB"}}
  ]
})";

}  // namespace

int main() {
  const core::SystemSpec system = core::SystemSpec::perlmutter_cpu();
  const dag::WorkflowGraph workflow = dag::load_workflow(kWorkflowJson);

  // --- Day 1: run and archive -----------------------------------------------
  const trace::WorkflowTrace live =
      sim::run_workflow(workflow, system.to_machine());
  const std::string archive_path = "archive_demo_trace.json";
  {
    std::ofstream out(archive_path);
    out << live.to_json().pretty() << "\n";
  }
  std::cout << "archived " << archive_path << " ("
            << live.records().size() << " task records)\n\n";

  // --- Day 2: analyze from the archive ---------------------------------------
  std::ifstream in(archive_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const trace::WorkflowTrace archived =
      trace::WorkflowTrace::from_json(util::Json::parse(buffer.str()));

  std::cout << trace::describe_trace(archived) << "\n";

  const core::WorkflowCharacterization c =
      core::characterize_trace(workflow, archived);
  const core::RooflineModel model = core::build_model(system, c);
  std::cout << model.report() << "\n";

  // The archive also answers I/O questions (Darshan-style).
  const trace::IoReport io = trace::io_report(archived);
  for (const trace::IoChannelReport& channel : io.channels) {
    if (channel.bytes <= 0.0) continue;
    std::cout << "I/O channel " << channel.channel << ": "
              << util::format_bytes(channel.bytes) << " over "
              << util::format_seconds(channel.busy_seconds) << " -> "
              << util::format_rate(channel.achieved_bandwidth()) << " across "
              << channel.task_count << " tasks\n";
  }
  std::remove(archive_path.c_str());
  return 0;
}

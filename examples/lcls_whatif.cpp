// LCLS what-if: sweep the external (detector -> HPC) bandwidth and find
// where the 2020 ten-minute target becomes attainable — the quantitative
// version of the paper's QOS recommendation ("going for a faster computing
// unit is a bad idea; work on network and storage QOS instead").
//
// Also demonstrates the inverse experiment: making the compute 10x faster
// changes nothing while the workflow rides the external ceiling.
//
// Each bandwidth point runs a full simulation, so the sweep fans out over
// exec::SweepRunner (simulation-backed evaluator).  The 5 GB/s point is
// exactly the good-day baseline the counter-experiment needs, so it is
// served from the characterization cache instead of being re-simulated.
// The printed tables are byte-identical to the serial version for any job
// count (docs/PARALLELISM.md).

#include <iostream>

#include "core/advisor.hpp"
#include "exec/sweep.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workflows/lcls.hpp"

using namespace wfr;

namespace {

/// Builds the sweep point for one external bandwidth on the good-day
/// scenario; the exec::Scenario carries the system (the cache key), and
/// the evaluator rebuilds the LCLS scenario from it.
exec::Scenario external_bw_point(double external_bytes_per_second,
                                 const std::string& label) {
  exec::Scenario point;
  point.label = label;
  workflows::LclsScenario scenario = workflows::lcls_cori_good_day();
  scenario.system.external_gbs = external_bytes_per_second;
  point.system = scenario.system;
  return point;
}

}  // namespace

int main() {
  const analytical::LclsParams params;

  std::cout << "LCLS on Cori-HSW: external-bandwidth sweep (target: 6 tasks "
               "in 10 min)\n\n";
  util::TextTable table({"external bw", "makespan", "throughput",
                         "attainable at wall", "meets target?"});
  table.set_align(1, util::Align::kRight);
  table.set_align(2, util::Align::kRight);
  table.set_align(3, util::Align::kRight);

  const std::vector<double> bandwidths{0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 25.0};
  std::vector<exec::Scenario> points;
  for (double gbs : bandwidths)
    points.push_back(
        external_bw_point(gbs * util::kGBs, util::format_rate(gbs * util::kGBs)));
  // The counter-experiment as two more points: the good-day baseline (a
  // cache hit on the 5 GB/s sweep point) and the same day with 10x compute.
  {
    exec::Scenario baseline = external_bw_point(5.0 * util::kGBs, "good day");
    points.push_back(baseline);
    exec::Scenario boosted = baseline;
    boosted.label = "good day, 10x compute";
    boosted.system.node.peak_flops *= 10.0;
    points.push_back(boosted);
  }

  exec::SweepRunner runner;
  std::vector<workflows::LclsStudyResult> results =
      runner.run<workflows::LclsStudyResult>(
          points, [&params](const exec::Scenario& point) {
            // The label is presentation-only and excluded from the cache
            // key, so the evaluator must not bake it into the result —
            // use a fixed placeholder and restore per-point labels below.
            workflows::LclsScenario scenario = workflows::lcls_cori_good_day();
            scenario.label = "swept";
            scenario.system = point.system;
            return workflows::run_lcls(scenario, params);
          });
  for (std::size_t i = 0; i < points.size(); ++i)
    results[i].model.set_dot_label(0, points[i].label);

  for (std::size_t i = 0; i < bandwidths.size(); ++i) {
    const workflows::LclsStudyResult& r = results[i];
    const double attainable =
        r.model.attainable_tps(r.model.parallelism_wall());
    const bool meets = attainable >= r.model.target_throughput_tps() &&
                       r.model.zone_of(r.model.dots()[0]) ==
                           core::Zone::kGoodMakespanGoodThroughput;
    table.add_row({points[i].label,
                   util::format_seconds(r.trace.makespan_seconds()),
                   util::format("%.2e tasks/s", r.model.dots()[0].tps),
                   util::format("%.2e tasks/s", attainable),
                   meets ? "yes" : "no"});
  }
  std::cout << table.str() << "\n";

  // The counter-experiment: 10x the compute at the observed bandwidth.
  std::cout << "Counter-experiment: 10x faster compute on a good day\n";
  const workflows::LclsStudyResult& base = results[bandwidths.size()];
  const workflows::LclsStudyResult& boosted = results[bandwidths.size() + 1];
  std::cout << util::format(
      "  baseline makespan:      %s\n  10x-compute makespan:  %s\n",
      util::format_seconds(base.trace.makespan_seconds()).c_str(),
      util::format_seconds(boosted.trace.makespan_seconds()).c_str());
  std::cout << "  -> the external ceiling still binds; compute speed is "
               "irrelevant here.\n\n";

  std::cout << core::advise(base.model).to_string();
  return 0;
}

// LCLS what-if: sweep the external (detector -> HPC) bandwidth and find
// where the 2020 ten-minute target becomes attainable — the quantitative
// version of the paper's QOS recommendation ("going for a faster computing
// unit is a bad idea; work on network and storage QOS instead").
//
// Also demonstrates the inverse experiment: making the compute 10x faster
// changes nothing while the workflow rides the external ceiling.

#include <iostream>

#include "core/advisor.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workflows/lcls.hpp"

using namespace wfr;

int main() {
  const analytical::LclsParams params;

  std::cout << "LCLS on Cori-HSW: external-bandwidth sweep (target: 6 tasks "
               "in 10 min)\n\n";
  util::TextTable table({"external bw", "makespan", "throughput",
                         "attainable at wall", "meets target?"});
  table.set_align(1, util::Align::kRight);
  table.set_align(2, util::Align::kRight);
  table.set_align(3, util::Align::kRight);

  for (double gbs : {0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 25.0}) {
    workflows::LclsScenario scenario = workflows::lcls_cori_good_day();
    scenario.label = util::format_rate(gbs * util::kGBs);
    scenario.system.external_gbs = gbs * util::kGBs;
    const workflows::LclsStudyResult r = workflows::run_lcls(scenario, params);
    const double attainable =
        r.model.attainable_tps(r.model.parallelism_wall());
    const bool meets = attainable >= r.model.target_throughput_tps() &&
                       r.model.zone_of(r.model.dots()[0]) ==
                           core::Zone::kGoodMakespanGoodThroughput;
    table.add_row({scenario.label,
                   util::format_seconds(r.trace.makespan_seconds()),
                   util::format("%.2e tasks/s", r.model.dots()[0].tps),
                   util::format("%.2e tasks/s", attainable),
                   meets ? "yes" : "no"});
  }
  std::cout << table.str() << "\n";

  // The counter-experiment: 10x the compute at the observed bandwidth.
  std::cout << "Counter-experiment: 10x faster compute on a good day\n";
  workflows::LclsScenario fast = workflows::lcls_cori_good_day();
  fast.label = "good day, 10x compute";
  fast.system.node.peak_flops *= 10.0;
  const workflows::LclsStudyResult base =
      workflows::run_lcls(workflows::lcls_cori_good_day(), params);
  const workflows::LclsStudyResult boosted = workflows::run_lcls(fast, params);
  std::cout << util::format(
      "  baseline makespan:      %s\n  10x-compute makespan:  %s\n",
      util::format_seconds(base.trace.makespan_seconds()).c_str(),
      util::format_seconds(boosted.trace.makespan_seconds()).c_str());
  std::cout << "  -> the external ceiling still binds; compute speed is "
               "irrelevant here.\n\n";

  std::cout << core::advise(base.model).to_string();
  return 0;
}

// Quickstart: describe a system and a workflow, execute the workflow on
// the discrete-event simulator, and read the Workflow Roofline verdict.
//
// The workflow is a small fork-join data-analysis pipeline: four parallel
// analysis tasks ingest detector data from outside the machine, then a
// reducer merges their outputs.  The run executes under observation, so
// it can also export a Chrome/Perfetto trace and a metrics snapshot.
//
// Build & run:  ./build/examples/quickstart
//               [--chrome-trace <out.json>] [--metrics <out.json>]

#include <fstream>
#include <iostream>
#include <string>

#include "core/advisor.hpp"
#include "core/characterization.hpp"
#include "core/model.hpp"
#include "core/system_spec.hpp"
#include "dag/graph.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/observation.hpp"
#include "plot/ascii.hpp"
#include "plot/roofline_plot.hpp"
#include "sim/runner.hpp"
#include "trace/summary.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

using namespace wfr;

int main(int argc, char** argv) {
  std::string chrome_trace_path;
  std::string metrics_path;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--chrome-trace") {
      chrome_trace_path = argv[i + 1];
    } else if (flag == "--metrics") {
      metrics_path = argv[i + 1];
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 1;
    }
  }
  // 1. The system: 512 nodes, modest GPU nodes, a shared filesystem, and
  //    a 10 GB/s external ingest link.
  core::SystemSpec system;
  system.name = "demo-cluster";
  system.total_nodes = 512;
  system.node.peak_flops = 20.0 * util::kTFLOPS;
  system.node.dram_gbs = 200.0 * util::kGBs;
  system.node.nic_gbs = 25.0 * util::kGBs;
  system.fs_gbs = 1.0 * util::kTBs;
  system.external_gbs = 10.0 * util::kGBs;

  // 2. The workflow: 4 parallel 16-node analysis tasks + a merge.
  dag::TaskSpec analysis;
  analysis.name = "analysis";
  analysis.kind = "analysis";
  analysis.nodes = 16;
  analysis.demand.external_in_bytes = 500 * util::kGB;
  analysis.demand.flops_per_node = 100.0 * util::kTFLOP;
  analysis.demand.dram_bytes_per_node = 40 * util::kGB;
  analysis.demand.fs_write_bytes = 2 * util::kGB;

  dag::TaskSpec merge;
  merge.name = "merge";
  merge.kind = "reduce";
  merge.nodes = 1;
  merge.demand.fs_read_bytes = 8 * util::kGB;
  merge.demand.flops_per_node = 5.0 * util::kTFLOP;

  dag::WorkflowGraph workflow =
      dag::make_fork_join("demo-analysis", analysis, 4, merge);

  // 3. Execute on the simulator (shared channels contend fairly), under
  //    observation: the registry collects engine/runner self-metrics and
  //    the probe records the shared-resource time series.
  obs::Observation observation;
  sim::RunOptions run_options;
  run_options.observe = &observation;
  const trace::WorkflowTrace trace =
      sim::run_workflow(workflow, system.to_machine(), run_options);
  std::cout << trace::describe_trace(trace) << "\n";

  for (const obs::ResourceSummary& s : observation.probe.summaries()) {
    std::cout << "resource " << s.name << ": p95 utilization "
              << static_cast<int>(100.0 * s.p95_utilization) << "%, "
              << util::format_bytes(s.delivered_bytes) << " delivered\n";
  }

  // 4. Characterize and build the Workflow Roofline.
  core::WorkflowCharacterization c =
      core::characterize_trace(workflow, trace);
  c.target_makespan_seconds = 4.0 * util::kMinute;
  core::RooflineModel model = core::build_model(system, c);

  std::cout << model.report() << "\n";
  std::cout << core::advise(model).to_string() << "\n";
  std::cout << plot::ascii_roofline(model) << "\n";

  plot::write_roofline_svg(model, "quickstart_roofline.svg");
  std::cout << "wrote quickstart_roofline.svg\n";

  // 6. Optional observability exports (what `wfr run` does for any
  //    workflow description).
  if (!chrome_trace_path.empty()) {
    obs::write_chrome_trace(chrome_trace_path, trace,
                            observation.probe.series());
    std::cout << "wrote " << chrome_trace_path
              << " (open at https://ui.perfetto.dev)\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::binary);
    if (!out) throw util::Error("cannot write '" + metrics_path + "'");
    out << observation.to_json().pretty() << "\n";
    std::cout << "wrote " << metrics_path << "\n";
  }
  return 0;
}

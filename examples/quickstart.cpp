// Quickstart: describe a system and a workflow, execute the workflow on
// the discrete-event simulator, and read the Workflow Roofline verdict.
//
// The workflow is a small fork-join data-analysis pipeline: four parallel
// analysis tasks ingest detector data from outside the machine, then a
// reducer merges their outputs.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/advisor.hpp"
#include "core/characterization.hpp"
#include "core/model.hpp"
#include "core/system_spec.hpp"
#include "dag/graph.hpp"
#include "plot/ascii.hpp"
#include "plot/roofline_plot.hpp"
#include "sim/runner.hpp"
#include "trace/summary.hpp"
#include "util/units.hpp"

using namespace wfr;

int main() {
  // 1. The system: 512 nodes, modest GPU nodes, a shared filesystem, and
  //    a 10 GB/s external ingest link.
  core::SystemSpec system;
  system.name = "demo-cluster";
  system.total_nodes = 512;
  system.node.peak_flops = 20.0 * util::kTFLOPS;
  system.node.dram_gbs = 200.0 * util::kGBs;
  system.node.nic_gbs = 25.0 * util::kGBs;
  system.fs_gbs = 1.0 * util::kTBs;
  system.external_gbs = 10.0 * util::kGBs;

  // 2. The workflow: 4 parallel 16-node analysis tasks + a merge.
  dag::TaskSpec analysis;
  analysis.name = "analysis";
  analysis.kind = "analysis";
  analysis.nodes = 16;
  analysis.demand.external_in_bytes = 500 * util::kGB;
  analysis.demand.flops_per_node = 100.0 * util::kTFLOP;
  analysis.demand.dram_bytes_per_node = 40 * util::kGB;
  analysis.demand.fs_write_bytes = 2 * util::kGB;

  dag::TaskSpec merge;
  merge.name = "merge";
  merge.kind = "reduce";
  merge.nodes = 1;
  merge.demand.fs_read_bytes = 8 * util::kGB;
  merge.demand.flops_per_node = 5.0 * util::kTFLOP;

  dag::WorkflowGraph workflow =
      dag::make_fork_join("demo-analysis", analysis, 4, merge);

  // 3. Execute on the simulator (shared channels contend fairly).
  const trace::WorkflowTrace trace =
      sim::run_workflow(workflow, system.to_machine());
  std::cout << trace::describe_trace(trace) << "\n";

  // 4. Characterize and build the Workflow Roofline.
  core::WorkflowCharacterization c =
      core::characterize_trace(workflow, trace);
  c.target_makespan_seconds = 4.0 * util::kMinute;
  core::RooflineModel model = core::build_model(system, c);

  std::cout << model.report() << "\n";
  std::cout << core::advise(model).to_string() << "\n";
  std::cout << plot::ascii_roofline(model) << "\n";

  plot::write_roofline_svg(model, "quickstart_roofline.svg");
  std::cout << "wrote quickstart_roofline.svg\n";
  return 0;
}

// Capacity planning with the Fig. 2c what-if: trade intra-task parallelism
// against task parallelism for a BGW-like workload.  Doubling nodes per
// task halves the parallelism wall and (under perfect scaling) doubles the
// node ceiling — making makespan targets easier and throughput targets
// harder.  Imperfect scaling erodes the makespan win.

#include <iostream>

#include "analytical/bgw_model.hpp"
#include "core/advisor.hpp"
#include "core/model.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace wfr;

int main() {
  const core::SystemSpec system = core::SystemSpec::perlmutter_gpu();
  // Start from BGW at 64 nodes/task, planning a campaign of 56 runs.
  core::WorkflowCharacterization base =
      analytical::bgw_characterization(analytical::BgwParams{}, 64);
  base.total_tasks = 56;
  base.parallel_tasks = 28;  // fill the machine with 64-node tasks
  base.makespan_seconds = -1.0;

  std::cout << "Intra-task parallelism sweep for a 56-run BGW campaign on "
            << system.name << "\n\n";

  for (double efficiency : {1.0, 0.8}) {
    std::cout << util::format("strong-scaling efficiency %.0f%%:\n",
                              100.0 * efficiency);
    util::TextTable table({"nodes/task", "wall", "node ceiling (1 task)",
                           "best throughput", "campaign makespan"});
    table.set_align(1, util::Align::kRight);
    for (double factor : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const core::WorkflowCharacterization scaled =
          core::scale_intra_task_parallelism(base, factor, efficiency);
      const core::RooflineModel model = core::build_model(system, scaled);
      const int wall = model.parallelism_wall();
      const double slot_seconds =
          model.binding_ceiling(1.0).seconds_per_task;
      const double best_tps = model.attainable_tps(wall);
      // Campaign makespan at the ceiling: waves of `wall` slots, each
      // processing tasks_per_slot tasks.
      const double campaign_makespan =
          static_cast<double>(scaled.total_tasks) / best_tps;
      table.add_row({util::format("%d", scaled.nodes_per_task),
                     util::format("%d", wall),
                     util::format_seconds(slot_seconds),
                     util::format("%.3g tasks/s", best_tps),
                     util::format_seconds(campaign_makespan)});
    }
    std::cout << table.str() << "\n";
  }

  std::cout
      << "Reading: more nodes per task -> shorter per-result latency but a\n"
         "lower wall; with imperfect scaling the latency win shrinks while\n"
         "the throughput loss stays - the paper's Fig. 2c caveat.\n";
  return 0;
}

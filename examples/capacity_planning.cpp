// Capacity planning with the Fig. 2c what-if: trade intra-task parallelism
// against task parallelism for a BGW-like workload.  Doubling nodes per
// task halves the parallelism wall and (under perfect scaling) doubles the
// node ceiling — making makespan targets easier and throughput targets
// harder.  Imperfect scaling erodes the makespan win.
//
// The 2x5 grid fans out over exec::SweepRunner: every (efficiency,
// nodes-per-task) point is evaluated concurrently, and the printed tables
// are byte-identical to the serial version for any job count
// (docs/PARALLELISM.md).

#include <iostream>

#include "analytical/bgw_model.hpp"
#include "core/model.hpp"
#include "exec/sweep.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace wfr;

int main() {
  const core::SystemSpec system = core::SystemSpec::perlmutter_gpu();
  // Start from BGW at 64 nodes/task, planning a campaign of 56 runs.
  core::WorkflowCharacterization base =
      analytical::bgw_characterization(analytical::BgwParams{}, 64);
  base.total_tasks = 56;
  base.parallel_tasks = 28;  // fill the machine with 64-node tasks
  base.makespan_seconds = -1.0;

  std::cout << "Intra-task parallelism sweep for a 56-run BGW campaign on "
            << system.name << "\n\n";

  // Row-major grid: efficiency varies slowest, so the results arrive as
  // one contiguous block of factors per efficiency table.
  const std::vector<double> efficiencies{1.0, 0.8};
  const std::vector<double> factors{0.5, 1.0, 2.0, 4.0, 8.0};
  const std::vector<exec::Scenario> scenarios = exec::expand_grid(
      system, base,
      {{"efficiency", efficiencies}, {"nodes_per_task", factors}});

  exec::SweepRunner runner;
  const std::vector<exec::ScenarioResult> results =
      runner.run_models(scenarios);

  std::size_t next = 0;
  for (double efficiency : efficiencies) {
    std::cout << util::format("strong-scaling efficiency %.0f%%:\n",
                              100.0 * efficiency);
    util::TextTable table({"nodes/task", "wall", "node ceiling (1 task)",
                           "best throughput", "campaign makespan"});
    table.set_align(1, util::Align::kRight);
    for (std::size_t i = 0; i < factors.size(); ++i, ++next) {
      const exec::ScenarioResult& r = results[next];
      table.add_row(
          {util::format("%d", r.scenario.workflow.nodes_per_task),
           util::format("%d", r.parallelism_wall),
           util::format_seconds(r.slot_seconds),
           util::format("%.3g tasks/s", r.attainable_tps_at_wall),
           util::format_seconds(r.campaign_makespan_seconds)});
    }
    std::cout << table.str() << "\n";
  }

  std::cout
      << "Reading: more nodes per task -> shorter per-result latency but a\n"
         "lower wall; with imperfect scaling the latency win shrinks while\n"
         "the throughput loss stays - the paper's Fig. 2c caveat.\n";
  return 0;
}
